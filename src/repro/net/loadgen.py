"""``repro loadgen``: replay a bench workload over the wire.

The driver mirrors :func:`repro.serving.replay.run_replay` exactly —
same ``passes``-fold stream, same :func:`~repro.serving.replay._chunks`
split, same coordinator-applied updates from the same seeded generator
— but pushes every query through :class:`~repro.net.client.NetClient`
connections instead of in-process worker threads.  That one-to-one
correspondence is what makes the final over-the-wire digest comparable
to :func:`repro.bench.runner.content_digest` of an in-process replay:
both sides serve the identical document history, so the answers must be
byte-identical and the bench gate diffs them.

Updates need the document to generate against
(:func:`~repro.serving.replay.random_update` samples oids and labels
from the graph), so the load generator keeps a **local mirror**: a copy
of the server's initial graph, built from the same dataset seed, that
every update is applied to locally *and* shipped over the RPC — with
the returned global oids asserted equal to the locally-allocated ones.
Any drift between mirror and server is a hard error, not a skewed
digest later.

Latency is recorded per query around the blocking RPC; the report
carries p50/p95/p99 (linear interpolation) and the serving-phase
throughput.  Shed responses are counted and *not* retried: queries are
read-only, and under overload the honest number is how many the server
refused.
"""

from __future__ import annotations

import hashlib
import queue as _queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.indexes import maintenance as _maintenance
from repro.net.client import LoadShedError, NetClient
from repro.queries.pathexpr import as_expression
from repro.serving.replay import _chunks, random_update

if TYPE_CHECKING:
    from collections.abc import Iterable

    from repro.graph.datagraph import DataGraph
    from repro.indexes.maintenance import SubtreeSpec
    from repro.queries.pathexpr import PathExpression


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


@dataclass(frozen=True)
class LoadgenConfig:
    """Knobs for one load-generation run (deterministic given seeds,
    up to scheduling — the digest is schedule-invariant regardless)."""

    connections: int = 4
    passes: int = 2
    update_rounds: int = 0
    updates_per_round: int = 1
    update_seed: int = 0
    refine_between_rounds: bool = True
    #: Per-query deadline shipped on the wire (None = no budget field,
    #: server's ``default_timeout`` applies).
    budget_ms: int | None = None

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        if self.update_rounds < 0 or self.updates_per_round < 0:
            raise ValueError("update rounds/counts must be >= 0")


@dataclass
class LoadgenReport:
    """What one over-the-wire replay did, and how fast."""

    connections: int = 1
    queries_sent: int = 0
    queries_ok: int = 0
    shed: int = 0
    duration_s: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    degraded: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    updates_applied: int = 0
    refinements: int = 0
    update_log: list[str] = field(default_factory=list)
    #: Answers-only digest over the wire — compare with
    #: :func:`repro.bench.runner.content_digest` of an in-process run.
    content_digest: str = ""

    @property
    def throughput_qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.queries_ok / self.duration_s

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "queries_sent": self.queries_sent,
            "queries_ok": self.queries_ok,
            "shed": self.shed,
            "duration_s": self.duration_s,
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "degraded": self.degraded,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "updates_applied": self.updates_applied,
            "refinements": self.refinements,
            "update_log": list(self.update_log),
            "content_digest": self.content_digest,
        }


class _Mirror:
    """Duck-types the writer surface :func:`random_update` needs.

    Every update lands on the local graph copy first (allocating the
    same oids the server's global mirror will) and is then shipped over
    the RPC; oid disagreement raises immediately.
    """

    def __init__(self, graph: "DataGraph", client: NetClient) -> None:
        self.graph = graph
        self._client = client

    def add_reference(self, source_oid: int, target_oid: int) -> None:
        _maintenance.add_reference(self.graph, source_oid, target_oid,
                                   indexes=())
        self._client.add_reference(source_oid, target_oid)

    def insert_subtree(self, parent_oid: int,
                       subtree: "SubtreeSpec") -> list[int]:
        local = _maintenance.insert_subtree(self.graph, parent_oid, subtree,
                                            indexes=())
        remote = self._client.insert_subtree(parent_oid, subtree)
        if list(remote) != list(local):
            raise AssertionError(
                f"server allocated oids {remote} for insert under "
                f"{parent_oid} but the loadgen mirror allocated {local} — "
                f"mirror and server have diverged")
        return local


def wire_content_digest(client: NetClient,
                        queries: "Iterable[PathExpression | str]") -> str:
    """Answers-only digest of the *served* answers, over the wire.

    Hashes the same ``expr=[answers]`` lines as
    :func:`repro.bench.runner.content_digest`, but from QUERY responses
    instead of a pinned in-process oracle — which is exactly the point:
    agreement proves the served answers match ground truth through the
    whole protocol stack.  Only meaningful while no updates are in
    flight (the loadgen runs it after the last round).
    """
    unique = sorted({as_expression(q) for q in queries}, key=str)
    hasher = hashlib.sha256()
    for expr in unique:
        answers = ",".join(map(str, client.query(str(expr))["answers"]))
        hasher.update(f"{expr}=[{answers}]\n".encode())
    return hasher.hexdigest()


def run_loadgen(host: str, port: int, graph: "DataGraph",
                queries: "Iterable[PathExpression | str]",
                config: LoadgenConfig = LoadgenConfig()) -> LoadgenReport:
    """Replay ``queries`` against a running server at ``(host, port)``.

    ``graph`` is the loadgen's local mirror of the server's *initial*
    document (build it from the same dataset seed); it is mutated by
    the update rounds.  See the module docstring for the exact
    correspondence with in-process replay.
    """
    exprs = [as_expression(q) for q in queries]
    stream = exprs * config.passes
    rng = random.Random(config.update_seed)
    report = LoadgenReport(connections=config.connections)

    control = NetClient(host, port)
    clients = [NetClient(host, port,
                         default_budget_ms=config.budget_ms)
               for _ in range(config.connections)]
    latencies: list[float] = []
    latency_lock = threading.Lock()
    serving_s = 0.0
    try:
        mirror = _Mirror(graph, control)
        chunks = _chunks(stream, config.update_rounds + 1)
        for round_index, chunk in enumerate(chunks):
            if chunk:
                serving_s += _serve_chunk(chunk, clients, report,
                                          latencies, latency_lock)
            if round_index < config.update_rounds:
                for _ in range(config.updates_per_round):
                    report.update_log.append(random_update(mirror, rng))
                    report.updates_applied += 1
                if config.refine_between_rounds:
                    report.refinements += control.refine()
        report.duration_s = serving_s
        latencies.sort()
        report.p50_ms = percentile(latencies, 0.50) * 1e3
        report.p95_ms = percentile(latencies, 0.95) * 1e3
        report.p99_ms = percentile(latencies, 0.99) * 1e3
        report.content_digest = wire_content_digest(control, exprs)
    finally:
        control.close()
        for client in clients:
            client.close()
    return report


def _serve_chunk(chunk: "list[PathExpression]", clients: list[NetClient],
                 report: LoadgenReport,
                 latencies: list[float], latency_lock: threading.Lock
                 ) -> float:
    """Push one chunk through all connections; returns wall seconds."""
    work: _queue.SimpleQueue = _queue.SimpleQueue()
    for expr in chunk:
        work.put(expr)
    counts_lock = threading.Lock()
    errors: list[BaseException] = []

    def run(client: NetClient) -> None:
        while True:
            try:
                expr = work.get_nowait()
            except _queue.Empty:
                return
            started = time.monotonic()
            try:
                response = client.query(str(expr))
            except LoadShedError:
                with counts_lock:
                    report.queries_sent += 1
                    report.shed += 1
                continue
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
                return
            elapsed = time.monotonic() - started
            with latency_lock:
                latencies.append(elapsed)
            with counts_lock:
                report.queries_sent += 1
                report.queries_ok += 1
                if response["degraded"]:
                    report.degraded += 1
                if response["timed_out"]:
                    report.timeouts += 1
                if response["cache_hit"]:
                    report.cache_hits += 1

    threads = [threading.Thread(target=run, args=(client,),
                                name=f"loadgen-{i}", daemon=True)
               for i, client in enumerate(clients[:max(1, len(chunk))])]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed
