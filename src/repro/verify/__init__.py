"""Differential correctness verification for the index families.

The paper's claims rest on two guarantees this package makes checkable at
will:

* **answer-set correctness** — every index family returns exactly the
  target set that direct evaluation on the data graph produces
  (:mod:`repro.verify.oracle`), for static indexes and at every step of
  an adaptive refinement sequence;
* **structural soundness** — index extents partition the data nodes,
  similarity claims are consistent with the incoming label paths they
  promise, M*(k) cross-component links stay bipartite-consistent, and
  cost counters behave like visit counts
  (:mod:`repro.verify.invariants`).

:mod:`repro.verify.fuzz` generates the seeded random graphs (trees, DAGs,
IDREF cycles, skewed alphabets) and workloads (rooted/descendant anchors,
wildcards, internal ``//`` axes, drifting FUP mixes) the checks run over;
:mod:`repro.verify.runner` drives whole verification campaigns and backs
the ``repro verify`` CLI subcommand.
"""

from repro.verify.fuzz import (
    GRAPH_PROFILES,
    GraphProfile,
    random_data_graph,
    random_fup_stream,
    random_workload,
)
from repro.verify.invariants import (
    check_cost_counter,
    check_extent_path_consistency,
    check_index_partition,
    check_mstar_links,
)
from repro.verify.oracle import (
    DEFAULT_FAMILIES,
    Discrepancy,
    build_index_suite,
    check_engine_sequence,
    check_query,
    check_static_suite,
)
from repro.verify.runner import VerificationReport, run_verification

__all__ = [
    "DEFAULT_FAMILIES",
    "Discrepancy",
    "GRAPH_PROFILES",
    "GraphProfile",
    "VerificationReport",
    "build_index_suite",
    "check_cost_counter",
    "check_engine_sequence",
    "check_extent_path_consistency",
    "check_index_partition",
    "check_mstar_links",
    "check_query",
    "check_static_suite",
    "random_data_graph",
    "random_fup_stream",
    "random_workload",
    "run_verification",
]
