"""Structural invariant checks for index graphs and cost counters.

Every check returns a list of human-readable violation strings (empty =
pass) rather than raising, so the verification runner can collect all
violations of a round into one report with its repro seed.

Checked here:

* **partition** — index extents disjointly cover the data nodes and the
  reverse ``node_of`` map agrees (plus Property 2: index edges mirror
  data edges);
* **k-label-path consistency** — for an index node claiming local
  similarity ``k``, all data nodes in its extent must share the same set
  of incoming label paths up to length ``k``; this is the exact property
  the query algorithm trusts when it returns an extent without
  validation;
* **M*(k) link bipartiteness** — supernode/subnode links between
  components ``I0..Ik`` are mutually consistent: every link is mirrored,
  subnode extents nest inside (and together cover) their supernode's
  extent, and Properties 2-5 hold;
* **cost counters** — visit counts are non-negative and ``add`` is
  monotone.
"""

from __future__ import annotations

from repro.cost.counters import CostCounter
from repro.graph.datagraph import DataGraph
from repro.indexes.base import IndexGraph
from repro.indexes.mstarindex import MStarIndex

#: Path-consistency checks cap the explored depth; incoming-path sets can
#: grow exponentially with depth on reference-heavy graphs.
MAX_CONSISTENCY_DEPTH = 5


def incoming_label_paths(graph: DataGraph, oid: int,
                         depth: int) -> frozenset[tuple[str, ...]]:
    """All incoming label paths of length ``<= depth`` ending at ``oid``.

    A label path here includes the node's own label (a path of one label
    has length 0, matching the paper's edge-counting convention).
    Backward BFS over the parent lists; bounded depth keeps this finite
    on cyclic graphs.
    """
    node_labels = graph.labels
    parents = graph.parent_rows()
    paths = {(node_labels[oid],)}
    frontier: set[tuple[int, tuple[str, ...]]] = {(oid, (node_labels[oid],))}
    for _ in range(depth):
        next_frontier: set[tuple[int, tuple[str, ...]]] = set()
        for node, suffix in frontier:
            for parent in parents[node]:
                extended = (node_labels[parent],) + suffix
                if extended not in paths:
                    paths.add(extended)
                next_frontier.add((parent, extended))
        frontier = next_frontier
    return frozenset(paths)


def check_extent_path_consistency(graph: DataGraph, index: IndexGraph,
                                  max_depth: int = MAX_CONSISTENCY_DEPTH
                                  ) -> list[str]:
    """Is every extent k-label-path-consistent for its node's local k?

    The check is exact up to ``max_depth``: a node claiming ``k`` beyond
    the cap is verified at the cap only (still a sound necessary
    condition).
    """
    violations: list[str] = []
    for nid, node in sorted(index.nodes.items()):
        depth = min(node.k, max_depth)
        if depth == 0 or len(node.extent) < 2:
            continue
        oids = list(node.extent)
        reference = incoming_label_paths(graph, oids[0], depth)
        for oid in oids[1:]:
            observed = incoming_label_paths(graph, oid, depth)
            if observed != reference:
                missing = sorted(reference ^ observed)[:3]
                violations.append(
                    f"index node {nid} (label {node.label!r}, k={node.k}) "
                    f"mixes oids {oids[0]} and {oid} whose incoming label "
                    f"paths differ at depth <= {depth}, e.g. "
                    f"{['/'.join(p) for p in missing]}")
                break
    return violations


def check_index_partition(index: IndexGraph) -> list[str]:
    """Partition + edge-mirroring invariants of one index graph."""
    violations: list[str] = []
    try:
        index.check_partition()
    except AssertionError as exc:
        violations.append(f"partition: {exc}")
    try:
        index.check_edges()
    except AssertionError as exc:
        violations.append(f"edges: {exc}")
    return violations


def check_mstar_links(index: MStarIndex) -> list[str]:
    """Bipartite consistency of M*(k) supernode/subnode links.

    Verifies, across every pair of adjacent components ``I(i-1)``/``Ii``:

    * both link directions exist for exactly the live node ids;
    * ``supernode`` and ``subnodes`` are mutual inverses (a bipartite
      graph stored twice must be the same graph twice);
    * subnode extents nest inside their supernode's extent, and the
      subnodes of one supernode disjointly cover it;

    then delegates to :meth:`MStarIndex.check_invariants` for the
    remaining component-level properties (2-5).
    """
    violations: list[str] = []
    for i in range(1, len(index.components)):
        comp = index.components[i]
        coarser = index.components[i - 1]
        sup_map = index.supernode[i]
        sub_map = index.subnodes[i - 1]
        if set(sup_map) != set(comp.nodes):
            violations.append(
                f"I{i}: supernode map keys != live node ids")
            continue
        if set(sub_map) != set(coarser.nodes):
            violations.append(
                f"I{i - 1}: subnodes map keys != live node ids")
            continue
        for nid, sup in sup_map.items():
            if sup not in coarser.nodes:
                violations.append(
                    f"I{i}:{nid} links to dead supernode I{i - 1}:{sup}")
            elif nid not in sub_map.get(sup, ()):
                violations.append(
                    f"link I{i}:{nid} -> I{i - 1}:{sup} not mirrored in "
                    f"subnodes")
        for sup, subs in sub_map.items():
            covered: set[int] = set()
            for sub in subs:
                if sub not in comp.nodes:
                    violations.append(
                        f"I{i - 1}:{sup} lists dead subnode I{i}:{sub}")
                    continue
                if sup_map.get(sub) != sup:
                    violations.append(
                        f"link I{i - 1}:{sup} -> I{i}:{sub} not mirrored "
                        f"in supernode")
                extent = comp.nodes[sub].extent
                if not extent <= coarser.nodes[sup].extent:
                    violations.append(
                        f"I{i}:{sub} extent escapes its supernode "
                        f"I{i - 1}:{sup}")
                if covered & extent:
                    violations.append(
                        f"subnodes of I{i - 1}:{sup} overlap")
                covered |= extent
            if sup in coarser.nodes and covered != coarser.nodes[sup].extent:
                violations.append(
                    f"subnodes of I{i - 1}:{sup} do not cover its extent")
    if not violations:
        try:
            index.check_invariants()
        except AssertionError as exc:
            violations.append(f"component invariants: {exc}")
    return violations


def check_cost_counter(counter: CostCounter) -> list[str]:
    """Non-negativity plus monotonicity of ``add`` on a sample counter."""
    violations: list[str] = []
    if counter.index_visits < 0 or counter.data_visits < 0:
        violations.append(f"negative cost components in {counter!r}")
        return violations
    probe = counter.copy()
    before = probe.total
    probe.add(CostCounter(index_visits=1, data_visits=1))
    if probe.total != before + 2 or probe.total < before:
        violations.append(f"CostCounter.add not monotone from {counter!r}")
    return violations
