"""Seeded random graphs and workloads for differential verification.

Graph generation covers the structural regimes where index
implementations historically diverge (reference edges, shared nodes,
cycles, skewed label distributions):

* **trees** — plain documents, shallow or deep;
* **DAGs** — extra IDREF edges pointing "forward", so several label
  paths converge on one node;
* **cyclic graphs** — IDREF edges pointing "backward", creating nodes
  reachable from themselves;
* **schema-driven documents** — :class:`repro.datasets.generator`
  expansion of a small random DTD with declared IDREF references, the
  same machinery the dataset generators use.

Workload generation draws label paths that actually occur in the graph
(plus a pinch of guaranteed misses) and decorates them with rooted
anchors, wildcards, and internal ``//`` axes.  :func:`random_fup_stream`
produces the *drifting* query streams the adaptive engine is verified
against: phases dominated by a few repeated child-axis FUPs whose
identity changes from phase to phase.

Everything is deterministic given its seed, so any failure reduces to a
``(profile, seed, query)`` triple.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.dtd import Child, Element, Reference, Schema
from repro.datasets.generator import DocumentGenerator
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.graph.paths import enumerate_rooted_label_paths
from repro.queries.pathexpr import WILDCARD, PathExpression


@dataclass(frozen=True)
class GraphProfile:
    """Shape parameters for one family of random data graphs."""

    name: str
    num_nodes: int = 40
    num_labels: int = 4
    #: Zipf-style exponent for the label distribution (0 = uniform).
    label_skew: float = 0.0
    #: Bias towards recently-added parents (0 = uniform over all earlier
    #: nodes, 1 = always the latest — produces deep chains).
    depth_bias: float = 0.0
    #: Extra forward (DAG) reference edges, as a fraction of num_nodes.
    dag_edge_ratio: float = 0.0
    #: Extra backward (cycle-forming) reference edges, likewise.
    back_edge_ratio: float = 0.0
    #: Generate via a random schema + DocumentGenerator instead of the
    #: direct tree recipe (IDREFs come from declared references).
    schema_driven: bool = False


#: The standard verification mix, cycled through by the runner.
GRAPH_PROFILES: tuple[GraphProfile, ...] = (
    GraphProfile("tree", num_nodes=40, num_labels=4),
    GraphProfile("deep-tree", num_nodes=36, num_labels=3, depth_bias=0.75),
    GraphProfile("dag", num_nodes=40, num_labels=4, dag_edge_ratio=0.25),
    GraphProfile("cyclic", num_nodes=36, num_labels=4,
                 dag_edge_ratio=0.15, back_edge_ratio=0.2),
    GraphProfile("skewed", num_nodes=44, num_labels=6, label_skew=1.5,
                 dag_edge_ratio=0.1),
    GraphProfile("schema", num_nodes=48, num_labels=5, schema_driven=True),
)

_PROFILES_BY_NAME = {profile.name: profile for profile in GRAPH_PROFILES}


def profile_named(name: str) -> GraphProfile:
    """Look up one of the standard profiles by name."""
    try:
        return _PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES_BY_NAME))
        raise ValueError(f"unknown graph profile {name!r} (known: {known})")


def _alphabet(num_labels: int) -> list[str]:
    return [chr(ord("a") + i) for i in range(num_labels)]


def _skewed_choice(rng: random.Random, labels: list[str],
                   skew: float) -> str:
    if skew <= 0.0:
        return labels[rng.randrange(len(labels))]
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(labels))]
    return rng.choices(labels, weights=weights, k=1)[0]


def random_data_graph(profile: GraphProfile, seed: int) -> DataGraph:
    """One random data graph; deterministic given ``(profile, seed)``."""
    if profile.schema_driven:
        return _schema_graph(profile, seed)
    rng = random.Random(f"{profile.name}:{seed}")
    labels = _alphabet(profile.num_labels)
    graph = DataGraph()
    graph.add_node("root")
    for oid in range(1, profile.num_nodes):
        graph.add_node(_skewed_choice(rng, labels, profile.label_skew))
        if oid == 1 or rng.random() < profile.depth_bias:
            parent = oid - 1
        else:
            parent = rng.randrange(oid)
        graph.add_edge(parent, oid)
    num_dag = int(profile.num_nodes * profile.dag_edge_ratio)
    num_back = int(profile.num_nodes * profile.back_edge_ratio)
    for _ in range(num_dag):
        parent = rng.randrange(profile.num_nodes - 1)
        child = rng.randrange(parent + 1, profile.num_nodes)
        if not graph.has_edge(parent, child):
            graph.add_edge(parent, child, kind=EdgeKind.REFERENCE)
    for _ in range(num_back):
        child = rng.randrange(1, profile.num_nodes)
        parent = rng.randrange(child, profile.num_nodes)
        if parent != child and not graph.has_edge(parent, child):
            graph.add_edge(parent, child, kind=EdgeKind.REFERENCE)
    return graph


def _schema_graph(profile: GraphProfile, seed: int) -> DataGraph:
    """Expand a small random DTD via the dataset generator machinery."""
    rng = random.Random(f"schema:{profile.name}:{seed}")
    names = _alphabet(profile.num_labels)
    elements: dict[str, Element] = {}
    for rank, name in enumerate(names):
        children = []
        # Child slots point at strictly later names (guaranteed finite
        # depth) with occasional recursion back to the same name.
        for target in names[rank + 1:]:
            if rng.random() < 0.6:
                children.append(Child(target, min_occurs=1,
                                      max_occurs=rng.randint(1, 3),
                                      probability=rng.uniform(0.4, 1.0)))
        if rank + 1 < len(names) and (not children or rank == 0):
            # Guarantee expansion: give every inner element (and, always,
            # the document element) one certain child slot, else a run of
            # failed probability rolls degenerates the whole document to
            # a couple of nodes.
            children.append(Child(names[rank + 1], min_occurs=2,
                                  max_occurs=rng.randint(2, 4)))
        if rank > 0 and rng.random() < 0.3:
            children.append(Child(name, probability=0.3))
        references = []
        if rng.random() < 0.5:
            references.append(Reference(names[rng.randrange(len(names))],
                                        probability=0.5,
                                        max_targets=rng.randint(1, 2)))
        elements[name] = Element(name, tuple(children), tuple(references))
    schema = Schema(root=names[0], elements=elements)
    generator = DocumentGenerator(schema, max_nodes=profile.num_nodes,
                                  seed=seed)
    return generator.generate()


def random_workload(graph: DataGraph, num_queries: int, seed: int,
                    max_length: int = 5,
                    rooted_probability: float = 0.3,
                    wildcard_probability: float = 0.15,
                    descendant_probability: float = 0.15,
                    miss_probability: float = 0.1) -> list[PathExpression]:
    """Random path expressions biased towards paths the graph contains.

    Each query starts from a real rooted label path (so most queries have
    non-empty answers), then may keep its rooted anchor, receive
    single-step wildcards, receive internal ``//`` axes, or be corrupted
    into a guaranteed miss (a label outside the graph's alphabet).
    """
    pool = enumerate_rooted_label_paths(graph, max_length, max_paths=4000)
    if not pool:
        raise ValueError("graph yields no label paths to fuzz against")
    rng = random.Random(f"workload:{seed}")
    queries: list[PathExpression] = []
    for _ in range(num_queries):
        path = pool[rng.randrange(len(pool))]
        start = rng.randrange(len(path))
        num_labels = rng.randint(1, len(path) - start)
        labels = list(path[start:start + num_labels])
        rooted = start == 0 and rng.random() < rooted_probability
        for position in range(len(labels)):
            if rng.random() < wildcard_probability:
                labels[position] = WILDCARD
        if rng.random() < miss_probability:
            labels[rng.randrange(len(labels))] = "zz-missing"
        descendant_steps = frozenset(
            position for position in range(1, len(labels))
            if rng.random() < descendant_probability)
        queries.append(PathExpression(tuple(labels), rooted=rooted,
                                      descendant_steps=descendant_steps))
    return queries


def random_fup_stream(graph: DataGraph, num_queries: int, seed: int,
                      max_length: int = 4, num_phases: int = 3,
                      fups_per_phase: int = 3,
                      noise_probability: float = 0.25
                      ) -> list[PathExpression]:
    """A drifting query stream for exercising the adaptive engine.

    The stream is split into ``num_phases`` phases.  Each phase draws a
    fresh set of child-axis FUPs (refinable: no wildcards, no ``//``
    axes) and repeats them, interleaved with noise queries from
    :func:`random_workload`.  Phase changes make earlier FUPs go quiet —
    exactly the regime where a windowed extractor stops flagging them and
    the engine's refresh gate matters.
    """
    pool = [path for path in
            enumerate_rooted_label_paths(graph, max_length, max_paths=4000)]
    if not pool:
        raise ValueError("graph yields no label paths to fuzz against")
    rng = random.Random(f"fups:{seed}")
    noise = random_workload(graph, num_queries, seed + 1,
                            max_length=max_length)
    stream: list[PathExpression] = []
    per_phase = max(1, num_queries // max(1, num_phases))
    for phase in range(num_phases):
        fups = []
        for _ in range(fups_per_phase):
            path = pool[rng.randrange(len(pool))]
            start = rng.randrange(len(path))
            num_labels = rng.randint(1, len(path) - start)
            rooted = start == 0 and rng.random() < 0.3
            fups.append(PathExpression(path[start:start + num_labels],
                                       rooted=rooted))
        for _ in range(per_phase):
            if rng.random() < noise_probability and noise:
                stream.append(noise[rng.randrange(len(noise))])
            else:
                stream.append(fups[rng.randrange(len(fups))])
    return stream[:num_queries] if len(stream) > num_queries else stream
