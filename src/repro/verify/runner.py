"""Verification campaign driver behind ``repro verify``.

A campaign of ``rounds`` rounds cycles through the standard graph
profiles.  Each round derives a graph seed from the campaign seed,
generates a graph and a fuzzed workload, differential-checks every index
family against the data-graph oracle, checks structural invariants, and
(on adaptive rounds) drives :class:`AdaptiveIndexEngine` refinement
sequences step by step — including one with a windowed FUP extractor
over a drifting stream, the regime the engine's refresh gate exists for —
and replays each stream through cache-on vs cache-off engines, which
must be observationally identical (:func:`check_cache_equivalence`).
Each adaptive round ends with the *updates* axis
(:func:`check_update_equivalence`): document updates (subtree
insertions, IDREF additions) interleaved into the stream through the
maintenance module, after which cached and uncached engines must still
match the data-graph oracle — the regime that catches stale caches and
unsound incremental maintenance.  Adaptive rounds also run the
*sharding* axis (:func:`check_shard_equivalence`): a
:class:`~repro.sharding.ShardedEngine` over 2-4 shards of a private
copy of the round's graph, fed the same stream with interleaved
updates, must answer byte-for-byte like an unsharded database.

Deterministic: the same ``(seed, rounds, options)`` always replays the
same campaign, and every discrepancy reduces to a
``(profile, graph seed, query)`` triple replayable via
``repro verify --profile <p> --graph-seed <s>``.

The campaign doubles as the differential oracle for the compact data
plane: every round's graph is frozen to the CSR adjacency after
generation (the updates axis thaws it automatically on its first
mutation, so both backends get exercised in one round), and the whole
campaign runs under :func:`repro.core.extents.differential_checks`, so
every merge-based extent operation is recomputed against Python set
semantics and any divergence raises immediately.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.extents import differential_checks
from repro.core.fup import FupExtractor
from repro.indexes.dindex import DkIndex
from repro.indexes.mindex import MkIndex
from repro.indexes.mstarindex import MStarIndex
from repro.verify.fuzz import (
    GRAPH_PROFILES,
    GraphProfile,
    profile_named,
    random_data_graph,
    random_fup_stream,
    random_workload,
)
from repro.verify.oracle import (
    Discrepancy,
    check_cache_equivalence,
    check_engine_sequence,
    check_shard_equivalence,
    check_static_suite,
    check_update_equivalence,
)

#: Engine index factories exercised on adaptive rounds.
ENGINE_FACTORIES = {
    "M*(k)": MStarIndex,
    "M(k)": MkIndex,
    "D(k)-promote": DkIndex,
}


@dataclass
class VerificationReport:
    """Aggregated outcome of one verification campaign."""

    rounds: int = 0
    graphs_checked: int = 0
    queries_checked: int = 0
    engine_steps: int = 0
    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        lines = [
            f"verify: {self.rounds} rounds, {self.graphs_checked} graphs, "
            f"{self.queries_checked} index/query checks, "
            f"{self.engine_steps} engine steps",
        ]
        if self.ok:
            lines.append("verify: OK — no answer-set discrepancies, "
                         "no invariant violations")
        else:
            lines.append(f"verify: FAILED — {len(self.discrepancies)} "
                         f"discrepancies")
            for discrepancy in self.discrepancies:
                lines.append(f"  {discrepancy}")
        return "\n".join(lines)

    def repro_lines(self) -> list[str]:
        return [discrepancy.repro() for discrepancy in self.discrepancies]


def _graph_seed(seed: int, round_number: int) -> int:
    # Spread rounds across seed space deterministically; the multiplier
    # keeps campaigns with nearby base seeds from overlapping.
    return seed * 1_000_003 + round_number


def run_verification(seed: int = 0, rounds: int = 25,
                     families: Iterable[str] | None = None,
                     k: int = 2,
                     queries_per_round: int = 24,
                     engine_queries: int = 40,
                     profile: str | None = None,
                     graph_seed: int | None = None,
                     max_rounds_with_engine: int | None = None,
                     progress=None) -> VerificationReport:
    """Run a verification campaign; see the module docstring.

    ``profile``/``graph_seed`` switch to replay mode: a single round on
    exactly that graph (the form discrepancy repro lines name).
    ``progress`` is an optional callable receiving one status line per
    round.
    """
    report = VerificationReport()
    if profile is not None or graph_seed is not None:
        profiles: list[GraphProfile] = [
            profile_named(profile) if profile is not None
            else GRAPH_PROFILES[0]]
        seeds = [graph_seed if graph_seed is not None
                 else _graph_seed(seed, 0)]
        rounds = 1
    else:
        profiles = [GRAPH_PROFILES[r % len(GRAPH_PROFILES)]
                    for r in range(rounds)]
        seeds = [_graph_seed(seed, r) for r in range(rounds)]

    family_list = None if families is None else list(families)
    with differential_checks():
        _run_rounds(report, profiles, seeds, family_list, k,
                    queries_per_round, engine_queries,
                    max_rounds_with_engine, progress)
    return report


def _run_rounds(report: VerificationReport, profiles, seeds, family_list,
                k: int, queries_per_round: int, engine_queries: int,
                max_rounds_with_engine: int | None, progress) -> None:
    for round_number, (round_profile, round_seed) in enumerate(
            zip(profiles, seeds)):
        report.rounds += 1
        # Freeze to the CSR backend: the static suite and engine checks
        # read through the compact adjacency, and the updates axis thaws
        # the graph on its first mutation — one round covers both.
        graph = random_data_graph(round_profile, round_seed).freeze()
        report.graphs_checked += 1
        queries = random_workload(graph, queries_per_round, round_seed)
        found = check_static_suite(
            graph, queries, k=k, families=family_list,
            profile=round_profile.name, graph_seed=round_seed)
        report.queries_checked += len(queries)

        # Adaptive engines are exercised on a rotating subset of rounds:
        # refinement sequences dominate runtime, so each round drives one
        # factory, and every third round additionally runs the windowed-
        # extractor drift scenario.
        engine_budget = (max_rounds_with_engine is None
                         or round_number < max_rounds_with_engine)
        if engine_budget:
            factory_names = sorted(ENGINE_FACTORIES)
            factory_name = factory_names[round_number % len(factory_names)]
            stream = random_fup_stream(graph, engine_queries, round_seed)
            found.extend(check_engine_sequence(
                graph, stream, index_factory=ENGINE_FACTORIES[factory_name],
                profile=round_profile.name, graph_seed=round_seed))
            report.engine_steps += len(stream)
            # The result cache must be invisible: replay the stream
            # through cache-on vs cache-off engines of the same family.
            found.extend(check_cache_equivalence(
                graph, stream, index_factory=ENGINE_FACTORIES[factory_name],
                profile=round_profile.name, graph_seed=round_seed))
            report.engine_steps += len(stream)
            if round_number % 3 == 0:
                windowed = FupExtractor(threshold=2, window=8)
                found.extend(check_engine_sequence(
                    graph, stream, index_factory=MStarIndex,
                    extractor=windowed, profile=round_profile.name,
                    graph_seed=round_seed))
                report.engine_steps += len(stream)
            # The sharding axis: a combiner over 2-4 shards (rotating
            # with the round) must answer exactly like one unsharded
            # database, through interleaved updates.  It works on a
            # private copy of the graph, so round order is unaffected.
            found.extend(check_shard_equivalence(
                graph, stream, num_shards=2 + round_number % 3,
                profile=round_profile.name, graph_seed=round_seed))
            report.engine_steps += len(stream)
            # The updates axis mutates the graph, so it must be the last
            # user of this round's graph: document updates interleave
            # with the stream and caches/indexes must stay exact.
            found.extend(check_update_equivalence(
                graph, stream, index_factory=ENGINE_FACTORIES[factory_name],
                profile=round_profile.name, graph_seed=round_seed))
            report.engine_steps += len(stream)

        report.discrepancies.extend(found)
        if progress is not None:
            status = "ok" if not found else f"{len(found)} DISCREPANCIES"
            progress(f"round {round_number}: profile={round_profile.name} "
                     f"graph-seed={round_seed} "
                     f"nodes={graph.num_nodes} edges={graph.num_edges} "
                     f"-> {status}")
