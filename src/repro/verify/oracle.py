"""The differential correctness oracle.

Ground truth for any query is :func:`evaluate_on_data_graph` — forward
navigation over the raw data graph, no index involved.  The oracle runs
the same query through every index family and demands set-equality of
answers, for static indexes (:func:`check_static_suite`) and at every
step of an :class:`~repro.core.engine.AdaptiveIndexEngine` refinement
sequence (:func:`check_engine_sequence`).

Every failure is reported as a :class:`Discrepancy` carrying a minimal
repro (graph profile + graph seed + query text), so any CI hit can be
replayed with ``repro verify --profile <p> --graph-seed <s>``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.engine import AdaptiveIndexEngine
from repro.core.fup import FupExtractor
from repro.graph.datagraph import DataGraph
from repro.indexes.aindex import AkIndex
from repro.indexes.apex import ApexIndex
from repro.indexes.dataguide import DataGuide
from repro.indexes.dindex import DkIndex
from repro.indexes.fbindex import FBIndex
from repro.indexes.mindex import MkIndex
from repro.indexes.mstarindex import MStarIndex
from repro.indexes.oneindex import OneIndex
from repro.indexes.udindex import UDIndex
from repro.queries.evaluator import evaluate_on_data_graph, find_instance
from repro.queries.pathexpr import PathExpression
from repro.verify.invariants import (
    check_cost_counter,
    check_extent_path_consistency,
    check_index_partition,
    check_mstar_links,
)


@dataclass(frozen=True)
class Discrepancy:
    """One verification failure, with enough context to replay it."""

    kind: str  # "answers" | "invariant" | "witness" | "cost" | "cache"
    # | "update" | "error"
    family: str
    detail: str
    query: str | None = None
    profile: str | None = None
    graph_seed: int | None = None
    step: int | None = None

    def repro(self) -> str:
        """Minimal repro line: graph seed + query (+ replay command)."""
        parts = [f"kind={self.kind}", f"family={self.family}"]
        if self.profile is not None:
            parts.append(f"profile={self.profile}")
        if self.graph_seed is not None:
            parts.append(f"graph-seed={self.graph_seed}")
        if self.query is not None:
            parts.append(f"query={self.query}")
        if self.step is not None:
            parts.append(f"step={self.step}")
        line = " ".join(parts)
        if self.profile is not None and self.graph_seed is not None:
            line += (f"  [replay: repro verify --profile {self.profile} "
                     f"--graph-seed {self.graph_seed}]")
        return line

    def __str__(self) -> str:
        return f"{self.repro()}: {self.detail}"


@dataclass(frozen=True)
class FamilySpec:
    """How to build one index family for a graph + FUP set.

    ``trusted_k`` marks families whose local-similarity annotations must
    hold, so their extents are checked for k-label-path-consistency —
    exactly the property the query algorithm relies on when it trusts an
    extent without validation.  This now includes the adaptive families:
    the published M(k)/M*(k) refinement could overstate ``k`` (its
    qualified-parent split left claimed extents mixed across unqualified
    parents — found by this oracle), and the repo's split-by-all-parents
    correction makes the annotations sound, so the oracle enforces them.
    """

    name: str
    build: Callable[[DataGraph, list[PathExpression], int], object]
    trusted_k: bool = True
    adaptive: bool = False


def _refined(index, fups: list[PathExpression]):
    for expr in fups:
        index.refine(expr, index.query(expr))
    return index


DEFAULT_FAMILIES: tuple[FamilySpec, ...] = (
    FamilySpec("1", lambda g, fups, k: OneIndex(g)),
    FamilySpec("A(k)", lambda g, fups, k: AkIndex(g, k)),
    FamilySpec("D(k)-construct",
               lambda g, fups, k: DkIndex.construct(g, fups)),
    FamilySpec("D(k)-promote",
               lambda g, fups, k: _refined(DkIndex(g), fups),
               trusted_k=True, adaptive=True),
    FamilySpec("UD(k,l)", lambda g, fups, k: UDIndex(g, k, 1)),
    FamilySpec("M(k)", lambda g, fups, k: _refined(MkIndex(g), fups),
               trusted_k=True, adaptive=True),
    FamilySpec("M*(k)", lambda g, fups, k: _refined(MStarIndex(g), fups),
               trusted_k=True, adaptive=True),
    FamilySpec("F&B", lambda g, fups, k: FBIndex(g)),
    FamilySpec("APEX", lambda g, fups, k: _refined(ApexIndex(g), fups)),
    FamilySpec("DataGuide", lambda g, fups, k: DataGuide(g)),
)

FAMILY_NAMES = tuple(spec.name for spec in DEFAULT_FAMILIES)
_FAMILIES_BY_NAME = {spec.name: spec for spec in DEFAULT_FAMILIES}


def resolve_families(names: Iterable[str] | None) -> list[FamilySpec]:
    """Family specs for the given names (``None`` = all of them)."""
    if names is None:
        return list(DEFAULT_FAMILIES)
    specs = []
    for name in names:
        spec = _FAMILIES_BY_NAME.get(name)
        if spec is None:
            known = ", ".join(FAMILY_NAMES)
            raise ValueError(f"unknown index family {name!r} (known: {known})")
        specs.append(spec)
    return specs


def refinable_fups(queries: Sequence[PathExpression],
                   limit: int | None = None) -> list[PathExpression]:
    """The child-axis, wildcard-free subset of a workload (refine targets)."""
    seen: set[PathExpression] = set()
    fups: list[PathExpression] = []
    for expr in queries:
        if expr.has_wildcard or expr.has_descendant_steps:
            continue
        if expr in seen:
            continue
        seen.add(expr)
        fups.append(expr)
        if limit is not None and len(fups) >= limit:
            break
    return fups


def build_index_suite(graph: DataGraph, fups: list[PathExpression],
                      k: int = 2,
                      families: Iterable[str] | None = None,
                      profile: str | None = None,
                      graph_seed: int | None = None
                      ) -> tuple[dict[str, object], list[Discrepancy]]:
    """Build every requested family; build crashes become discrepancies."""
    indexes: dict[str, object] = {}
    failures: list[Discrepancy] = []
    for spec in resolve_families(families):
        try:
            indexes[spec.name] = spec.build(graph, list(fups), k)
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(Discrepancy(
                kind="error", family=spec.name, profile=profile,
                graph_seed=graph_seed,
                detail=f"index construction raised {type(exc).__name__}: "
                       f"{exc}"))
    return indexes, failures


def check_query(graph: DataGraph, family: str, index, expr: PathExpression,
                profile: str | None = None,
                graph_seed: int | None = None,
                truth: set[int] | None = None) -> list[Discrepancy]:
    """Differential check of one query on one index."""
    if truth is None:
        truth = evaluate_on_data_graph(graph, expr)
    context = dict(family=family, query=str(expr), profile=profile,
                   graph_seed=graph_seed)
    try:
        result = index.query(expr)
    except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
        return [Discrepancy(kind="error",
                            detail=f"query raised {type(exc).__name__}: "
                                   f"{exc}",
                            **context)]
    discrepancies: list[Discrepancy] = []
    if result.answers != truth:
        false_positives = sorted(result.answers - truth)[:5]
        false_negatives = sorted(truth - result.answers)[:5]
        discrepancies.append(Discrepancy(
            kind="answers",
            detail=f"answers differ from data-graph oracle: "
                   f"false positives {false_positives}, "
                   f"false negatives {false_negatives} "
                   f"(got {len(result.answers)}, want {len(truth)})",
            **context))
    for violation in check_cost_counter(result.cost):
        discrepancies.append(Discrepancy(kind="cost", detail=violation,
                                         **context))
    return discrepancies


def check_witnesses(graph: DataGraph, expr: PathExpression,
                    answers: set[int],
                    profile: str | None = None,
                    graph_seed: int | None = None,
                    max_witnesses: int = 10) -> list[Discrepancy]:
    """Every answer to a child-axis query must yield a valid witness path."""
    if expr.has_descendant_steps:
        return []
    discrepancies: list[Discrepancy] = []
    context = dict(family="oracle", query=str(expr), profile=profile,
                   graph_seed=graph_seed)
    for oid in sorted(answers)[:max_witnesses]:
        witness = find_instance(graph, expr, oid)
        if witness is None:
            discrepancies.append(Discrepancy(
                kind="witness",
                detail=f"find_instance found no witness for answer {oid}",
                **context))
            continue
        problem = _witness_problem(graph, expr, oid, witness)
        if problem:
            discrepancies.append(Discrepancy(
                kind="witness",
                detail=f"witness {witness} for answer {oid} invalid: "
                       f"{problem}",
                **context))
    return discrepancies


def _witness_problem(graph: DataGraph, expr: PathExpression, oid: int,
                     witness: list[int]) -> str | None:
    if len(witness) != len(expr.labels):
        return f"length {len(witness)} != {len(expr.labels)} labels"
    if witness[-1] != oid:
        return "does not end at the answer node"
    for position, node in enumerate(witness):
        if not expr.matches_label(position, graph.labels[node]):
            return (f"label {graph.labels[node]!r} at position {position} "
                    f"does not match step {expr.labels[position]!r}")
    for parent, child in zip(witness, witness[1:]):
        if not graph.has_edge(parent, child):
            return f"edge ({parent}, {child}) missing from the data graph"
    if expr.rooted and not graph.has_edge(graph.root, witness[0]):
        return "rooted witness does not start at a child of the root"
    return None


def _index_graphs_of(index) -> list:
    """The IndexGraph objects inside one index family instance."""
    if isinstance(index, MStarIndex):
        return list(index.components)
    if isinstance(index, ApexIndex):
        return [index.summary]
    inner = getattr(index, "index", None)
    return [inner] if inner is not None else []


def check_structure(graph: DataGraph, family: str, index,
                    trusted_k: bool = True,
                    profile: str | None = None,
                    graph_seed: int | None = None) -> list[Discrepancy]:
    """Structural invariants of one built index."""
    discrepancies: list[Discrepancy] = []
    context = dict(family=family, profile=profile, graph_seed=graph_seed)
    for position, index_graph in enumerate(_index_graphs_of(index)):
        where = (f"component I{position}: "
                 if isinstance(index, MStarIndex) else "")
        for violation in check_index_partition(index_graph):
            discrepancies.append(Discrepancy(
                kind="invariant", detail=where + violation, **context))
        if trusted_k:
            for violation in check_extent_path_consistency(graph,
                                                           index_graph):
                discrepancies.append(Discrepancy(
                    kind="invariant", detail=where + violation, **context))
    if isinstance(index, MStarIndex):
        for violation in check_mstar_links(index):
            discrepancies.append(Discrepancy(
                kind="invariant", detail=violation, **context))
    return discrepancies


def check_static_suite(graph: DataGraph, queries: Sequence[PathExpression],
                       k: int = 2,
                       families: Iterable[str] | None = None,
                       profile: str | None = None,
                       graph_seed: int | None = None,
                       max_fups: int | None = 12) -> list[Discrepancy]:
    """Build all families, run every query through each, check invariants."""
    fups = refinable_fups(queries, limit=max_fups)
    indexes, discrepancies = build_index_suite(
        graph, fups, k=k, families=families, profile=profile,
        graph_seed=graph_seed)
    truths = {expr: evaluate_on_data_graph(graph, expr) for expr in queries}
    for name, index in indexes.items():
        spec = _FAMILIES_BY_NAME[name]
        for expr in queries:
            discrepancies.extend(check_query(
                graph, name, index, expr, profile=profile,
                graph_seed=graph_seed, truth=truths[expr]))
        discrepancies.extend(check_structure(
            graph, name, index, trusted_k=spec.trusted_k,
            profile=profile, graph_seed=graph_seed))
    for expr, truth in truths.items():
        discrepancies.extend(check_witnesses(
            graph, expr, truth, profile=profile, graph_seed=graph_seed))
    return discrepancies


def check_cache_equivalence(graph: DataGraph,
                            stream: Sequence[PathExpression],
                            index_factory: Callable[[DataGraph], object]
                            = MStarIndex,
                            extractor_factory: Callable[[], FupExtractor]
                            | None = None,
                            profile: str | None = None,
                            graph_seed: int | None = None
                            ) -> list[Discrepancy]:
    """The result cache must be semantically invisible.

    Drives two engines through the same stream — one with the
    refinement-aware result cache enabled, one without — and demands
    per-step equality of answers and of the ``validated`` flag (a cache
    hit must be indistinguishable from re-running the query), plus
    matching refinement counts at the end: a stale cache entry would
    diverge exactly here, because refinement decisions feed on
    ``result.validated``.  Each engine gets its own extractor instance
    (extractors are stateful).
    """
    make_extractor = extractor_factory if extractor_factory is not None \
        else FupExtractor
    cached = AdaptiveIndexEngine(graph, index_factory=index_factory,
                                 extractor=make_extractor(), cache=True)
    plain = AdaptiveIndexEngine(graph, index_factory=index_factory,
                                extractor=make_extractor(), cache=False)
    family = f"cache[{type(cached.index).__name__}]"
    discrepancies: list[Discrepancy] = []
    context = dict(family=family, profile=profile, graph_seed=graph_seed)
    for step, expr in enumerate(stream):
        try:
            hot = cached.execute(expr)
            cold = plain.execute(expr)
        except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
            discrepancies.append(Discrepancy(
                kind="error", query=str(expr), step=step,
                detail=f"execute raised {type(exc).__name__}: {exc}",
                **context))
            break
        if hot.answers != cold.answers:
            discrepancies.append(Discrepancy(
                kind="cache", query=str(expr), step=step,
                detail=f"cached answers diverge after {cached.stats.cache_hits} "
                       f"hits: only-cached "
                       f"{sorted(hot.answers - cold.answers)[:5]}, "
                       f"only-uncached "
                       f"{sorted(cold.answers - hot.answers)[:5]}",
                **context))
        if hot.validated != cold.validated:
            discrepancies.append(Discrepancy(
                kind="cache", query=str(expr), step=step,
                detail=f"validated flag diverges: cached={hot.validated} "
                       f"uncached={cold.validated}",
                **context))
    if cached.stats.refinements != plain.stats.refinements:
        discrepancies.append(Discrepancy(
            kind="cache", step=len(stream) - 1,
            detail=f"refinement counts diverge: cached engine "
                   f"{cached.stats.refinements}, uncached "
                   f"{plain.stats.refinements}",
            **context))
    return discrepancies


def check_engine_sequence(graph: DataGraph,
                          stream: Sequence[PathExpression],
                          index_factory: Callable[[DataGraph], object]
                          = MStarIndex,
                          extractor: FupExtractor | None = None,
                          profile: str | None = None,
                          graph_seed: int | None = None,
                          check_every: int = 1) -> list[Discrepancy]:
    """Drive an adaptive engine through a stream, checking every step.

    After each executed query the answers are compared against the
    data-graph oracle and (every ``check_every`` steps, plus at the end)
    the index's structural invariants are re-checked — refinement is
    exactly where the partition/link invariants are at risk.
    """
    engine = AdaptiveIndexEngine(graph, index_factory=index_factory,
                                 extractor=extractor)
    family = f"engine[{type(engine.index).__name__}]"
    discrepancies: list[Discrepancy] = []
    context = dict(profile=profile, graph_seed=graph_seed)
    previous_total = 0
    for step, expr in enumerate(stream):
        try:
            result = engine.execute(expr)
        except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
            discrepancies.append(Discrepancy(
                kind="error", family=family, query=str(expr), step=step,
                detail=f"engine.execute raised {type(exc).__name__}: {exc}",
                **context))
            break
        truth = evaluate_on_data_graph(graph, expr)
        if result.answers != truth:
            discrepancies.append(Discrepancy(
                kind="answers", family=family, query=str(expr), step=step,
                detail=f"engine answers differ from oracle after "
                       f"{engine.stats.refinements} refinements: "
                       f"false positives "
                       f"{sorted(result.answers - truth)[:5]}, "
                       f"false negatives {sorted(truth - result.answers)[:5]}",
                **context))
        total = engine.stats.cost.total
        if total < previous_total:
            discrepancies.append(Discrepancy(
                kind="cost", family=family, query=str(expr), step=step,
                detail=f"running cost decreased: {previous_total} -> {total}",
                **context))
        previous_total = total
        if step % check_every == 0 or step == len(stream) - 1:
            for issue in check_structure(graph, family, engine.index,
                                         trusted_k=True, profile=profile,
                                         graph_seed=graph_seed):
                discrepancies.append(Discrepancy(
                    kind=issue.kind, family=issue.family, query=str(expr),
                    step=step, detail=issue.detail, **context))
    return discrepancies


# ----------------------------------------------------------------------
# The updates axis: document mutations interleaved with engine rounds
# ----------------------------------------------------------------------
def _apply_random_update(graph: DataGraph, rng: random.Random,
                         indexes: list) -> str:
    """One random document update through the maintenance entry points.

    Mutates ``graph`` (and every index in ``indexes``) in place and
    returns a human-readable description for discrepancy details.
    Roughly half the updates are subtree insertions, half IDREF edge
    additions (falling back to insertion when no fresh edge is found).
    """
    from repro.indexes.maintenance import add_reference, insert_subtree

    labels = sorted(graph.alphabet())
    if rng.random() >= 0.5:
        for _ in range(8):
            source = rng.randrange(graph.num_nodes)
            target = rng.randrange(1, graph.num_nodes)
            if target != source and not graph.has_edge(source, target):
                add_reference(graph, source, target, indexes=indexes)
                return f"add_reference({source} -> {target})"
    parent = rng.randrange(graph.num_nodes)
    label = labels[rng.randrange(len(labels))]
    child = labels[rng.randrange(len(labels))]
    insert_subtree(graph, parent, (label, [(child, [])]), indexes=indexes)
    return f"insert_subtree(({label} -> {child}) under {parent})"


def check_update_equivalence(graph: DataGraph,
                             stream: Sequence[PathExpression],
                             index_factory: Callable[[DataGraph], object]
                             = MStarIndex,
                             extractor_factory: Callable[[], FupExtractor]
                             | None = None,
                             update_every: int = 5,
                             profile: str | None = None,
                             graph_seed: int | None = None
                             ) -> list[Discrepancy]:
    """Document updates must invalidate caches and keep indexes exact.

    Drives a cache-on and a cache-off engine of the same family through
    one stream over one *shared* graph, interleaving a random document
    update (``insert_subtree`` / ``add_reference`` via the maintenance
    module, registered into both engines' indexes) every
    ``update_every`` steps.  After every step three things must hold:

    * the cached engine matches the data-graph oracle (a stale cache
      entry surviving an update surfaces here first),
    * the uncached engine matches the oracle (the demotion-based index
      maintenance itself is sound),
    * both engines agree on answers and the ``validated`` flag (the
      cache stays semantically invisible across updates).

    All divergences are reported as ``kind="update"`` discrepancies
    naming the last update applied.  **Mutates ``graph``** — callers
    must run this check last on a given graph (the campaign driver
    does).
    """
    make_extractor = extractor_factory if extractor_factory is not None \
        else FupExtractor
    cached = AdaptiveIndexEngine(graph, index_factory=index_factory,
                                 extractor=make_extractor(), cache=True)
    plain = AdaptiveIndexEngine(graph, index_factory=index_factory,
                                extractor=make_extractor(), cache=False)
    family = f"update[{type(cached.index).__name__}]"
    rng = random.Random(f"updates:{graph_seed}")
    discrepancies: list[Discrepancy] = []
    context = dict(family=family, profile=profile, graph_seed=graph_seed)
    last_update = "none yet"
    updates_applied = 0
    for step, expr in enumerate(stream):
        if step and step % update_every == 0:
            try:
                last_update = _apply_random_update(
                    graph, rng, [cached.index, plain.index])
                updates_applied += 1
            except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
                discrepancies.append(Discrepancy(
                    kind="error", step=step,
                    detail=f"maintenance raised {type(exc).__name__}: {exc}",
                    **context))
                break
        try:
            hot = cached.execute(expr)
            cold = plain.execute(expr)
        except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
            discrepancies.append(Discrepancy(
                kind="error", query=str(expr), step=step,
                detail=f"execute raised {type(exc).__name__} after "
                       f"{last_update}: {exc}", **context))
            break
        truth = evaluate_on_data_graph(graph, expr)
        for name, result in (("cache-on", hot), ("cache-off", cold)):
            if result.answers != truth:
                discrepancies.append(Discrepancy(
                    kind="update", query=str(expr), step=step,
                    detail=f"{name} engine diverges from oracle after "
                           f"{updates_applied} updates (last: {last_update}):"
                           f" false positives "
                           f"{sorted(result.answers - truth)[:5]}, "
                           f"false negatives "
                           f"{sorted(truth - result.answers)[:5]}",
                    **context))
        if hot.answers == truth and cold.answers == truth and \
                hot.validated != cold.validated:
            discrepancies.append(Discrepancy(
                kind="update", query=str(expr), step=step,
                detail=f"validated flag diverges after {last_update}: "
                       f"cached={hot.validated} uncached={cold.validated}",
                **context))
    return discrepancies


def _copy_graph(graph: DataGraph) -> DataGraph:
    """An independent mutable replica of ``graph`` (same oids, edges,
    kinds, root)."""
    from repro.graph.datagraph import EdgeKind

    clone = DataGraph()
    for oid in range(graph.num_nodes):
        clone.add_node(graph.label(oid))
    rows = graph.child_rows()
    kinds = getattr(graph, "_edge_kinds")
    for parent in range(graph.num_nodes):
        for child in rows[parent]:
            child = int(child)
            clone.add_edge(parent, child,
                           kind=kinds.get((parent, child), EdgeKind.REGULAR))
    clone.root = graph.root
    return clone


def check_shard_equivalence(graph: DataGraph,
                            stream: Sequence[PathExpression],
                            num_shards: int = 3,
                            update_every: int = 5,
                            profile: str | None = None,
                            graph_seed: int | None = None
                            ) -> list[Discrepancy]:
    """A sharded engine must answer exactly like one unsharded database.

    Builds a :class:`~repro.sharding.ShardedEngine` over a private copy
    of ``graph`` and drives it through the stream, interleaving random
    document updates through the combiner's writer path every
    ``update_every`` steps.  After every step the combiner's answer
    must equal forward navigation over its own global mirror — which
    evolves exactly like an unsharded document, so this is the
    single-shard equivalence check in one engine: placement, per-shard
    indexing, extent merging, cross-edge routing, and update routing
    all have to be right for every query to pass.

    Also checks placement invariants after every update: each node is
    owned by exactly one shard or the spine, and the per-shard oid maps
    stay mutually consistent.  Divergences are ``kind="shard"``.
    """
    from repro.sharding import ShardedEngine
    from repro.sharding.placement import SPINE

    discrepancies: list[Discrepancy] = []
    family = f"shard[{num_shards}]"
    context = dict(family=family, profile=profile, graph_seed=graph_seed)
    try:
        sharded = ShardedEngine(_copy_graph(graph).freeze(),
                                num_shards=num_shards)
    except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
        return [Discrepancy(
            kind="error",
            detail=f"ShardedEngine construction raised "
                   f"{type(exc).__name__}: {exc}", **context)]
    rng = random.Random(f"shards:{graph_seed}:{num_shards}")
    last_update = "none yet"
    for step, expr in enumerate(stream):
        if step and step % update_every == 0:
            from repro.serving.replay import random_update
            try:
                last_update = random_update(sharded, rng)
            except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
                discrepancies.append(Discrepancy(
                    kind="error", step=step,
                    detail=f"sharded update raised {type(exc).__name__}: "
                           f"{exc}", **context))
                break
            mirror = sharded.graph
            owner = sharded.placement.owner
            if len(owner) != mirror.num_nodes:
                discrepancies.append(Discrepancy(
                    kind="shard", step=step,
                    detail=f"placement covers {len(owner)} oids but the "
                           f"mirror has {mirror.num_nodes} after "
                           f"{last_update}", **context))
                break
            mapped = sum(len(shard.to_global) for shard in sharded.shards)
            spine = sum(1 for who in owner if who == SPINE)
            expected = mirror.num_nodes + spine * (num_shards - 1)
            if mapped != expected:
                discrepancies.append(Discrepancy(
                    kind="shard", step=step,
                    detail=f"shard oid maps hold {mapped} entries, expected "
                           f"{expected} (spine={spine}) after {last_update}",
                    **context))
                break
        try:
            served = sharded.query(expr)
        except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
            discrepancies.append(Discrepancy(
                kind="error", query=str(expr), step=step,
                detail=f"sharded query raised {type(exc).__name__} after "
                       f"{last_update}: {exc}", **context))
            break
        truth = evaluate_on_data_graph(sharded.graph, expr)
        if served.answers != truth:
            discrepancies.append(Discrepancy(
                kind="shard", query=str(expr), step=step,
                detail=f"combiner diverges from oracle after {last_update}: "
                       f"false positives "
                       f"{sorted(served.answers - truth)[:5]}, "
                       f"false negatives "
                       f"{sorted(truth - served.answers)[:5]}",
                **context))
    return discrepancies
