"""Labeled directed data graphs for semi-structured (XML) data.

This subpackage provides the data-graph substrate the paper's indexes are
built on: the :class:`~repro.graph.datagraph.DataGraph` model (Section 2 of
the paper), construction helpers, XML parsing with ID/IDREF resolution,
label-path machinery, and the paper's running example graphs.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.graph.paths import (
    enumerate_rooted_label_paths,
    label_path_target_set,
    pred_set,
    succ_set,
)
from repro.graph.xml_io import graph_to_xml, parse_xml, parse_xml_file

__all__ = [
    "DataGraph",
    "EdgeKind",
    "GraphBuilder",
    "enumerate_rooted_label_paths",
    "label_path_target_set",
    "graph_to_xml",
    "parse_xml",
    "parse_xml_file",
    "pred_set",
    "succ_set",
]
