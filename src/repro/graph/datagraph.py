"""The labeled directed data-graph model from Section 2 of the paper.

An XML document is represented by a labeled directed graph
``G = (V_G, E_G, root_G, Sigma_G)``.  Each node is identified by an integer
*oid* and carries a string label.  Two kinds of edges exist:

* **regular** edges for parent-child element nesting, and
* **reference** edges for ID/IDREF links.

Both kinds participate identically in path-expression semantics (a label
path may traverse either), which is how the paper treats them; the kind is
retained only for statistics and serialisation.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator


class EdgeKind(enum.Enum):
    """Kind of a data-graph edge."""

    REGULAR = "regular"
    REFERENCE = "reference"


class DataGraph:
    """A labeled directed graph over integer oids.

    Nodes are created with :meth:`add_node` and receive consecutive oids
    starting at 0.  The first node added is the root by default (it can be
    changed via :attr:`root`).  Edges are added with :meth:`add_edge`.

    The graph is append-only: indexes built on top of it keep references to
    its adjacency lists, and the experiments in the paper never mutate the
    document while an index is live.
    """

    __slots__ = ("_labels", "_children", "_parents", "_edge_kinds", "root",
                 "_label_index_cache")

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._children: list[list[int]] = []
        self._parents: list[list[int]] = []
        # (u, v) -> EdgeKind; absent for REGULAR to keep the dict small.
        self._edge_kinds: dict[tuple[int, int], EdgeKind] = {}
        self.root: int = 0
        self._label_index_cache: dict[str, list[int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, label: str) -> int:
        """Add a node with the given label and return its oid."""
        if not isinstance(label, str) or not label:
            raise ValueError(f"node label must be a non-empty string, got {label!r}")
        oid = len(self._labels)
        self._labels.append(label)
        self._children.append([])
        self._parents.append([])
        self._label_index_cache = None
        return oid

    def add_edge(self, parent: int, child: int,
                 kind: EdgeKind = EdgeKind.REGULAR) -> None:
        """Add a directed edge ``parent -> child``.

        Parallel edges are rejected: the index definitions in the paper are
        in terms of edge *existence* between extents, so multi-edges carry
        no information.
        """
        self._check_oid(parent)
        self._check_oid(child)
        if child in self._children[parent]:
            raise ValueError(f"duplicate edge ({parent}, {child})")
        self._children[parent].append(child)
        self._parents[child].append(parent)
        if kind is not EdgeKind.REGULAR:
            self._edge_kinds[(parent, child)] = kind

    def _check_oid(self, oid: int) -> None:
        if not 0 <= oid < len(self._labels):
            raise KeyError(f"no node with oid {oid}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return sum(len(kids) for kids in self._children)

    @property
    def num_reference_edges(self) -> int:
        return len(self._edge_kinds)

    def label(self, oid: int) -> str:
        """Return the label of node ``oid``."""
        return self._labels[oid]

    @property
    def labels(self) -> list[str]:
        """The label list indexed by oid (do not mutate)."""
        return self._labels

    def children(self, oid: int) -> list[int]:
        """Children of ``oid`` (regular and reference targets alike)."""
        return self._children[oid]

    def parents(self, oid: int) -> list[int]:
        """Parents of ``oid`` (regular and reference sources alike)."""
        return self._parents[oid]

    @property
    def child_lists(self) -> list[list[int]]:
        """Adjacency (children) lists indexed by oid (do not mutate)."""
        return self._children

    @property
    def parent_lists(self) -> list[list[int]]:
        """Reverse adjacency (parents) lists indexed by oid (do not mutate)."""
        return self._parents

    def edge_kind(self, parent: int, child: int) -> EdgeKind:
        """Return the kind of edge ``parent -> child``.

        Raises ``KeyError`` if the edge does not exist.
        """
        if child not in self._children[parent]:
            raise KeyError(f"no edge ({parent}, {child})")
        return self._edge_kinds.get((parent, child), EdgeKind.REGULAR)

    def nodes(self) -> range:
        """All oids, in insertion order."""
        return range(len(self._labels))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(parent, child)`` pairs."""
        for parent, kids in enumerate(self._children):
            for child in kids:
                yield parent, child

    def alphabet(self) -> set[str]:
        """The set of distinct labels (``Sigma_G``)."""
        return set(self._labels)

    def nodes_with_label(self, label: str) -> list[int]:
        """All oids carrying ``label`` (cached; cache reset on mutation)."""
        if self._label_index_cache is None:
            index: dict[str, list[int]] = {}
            for oid, node_label in enumerate(self._labels):
                index.setdefault(node_label, []).append(oid)
            self._label_index_cache = index
        return self._label_index_cache.get(label, [])

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, int) and 0 <= oid < len(self._labels)

    def __repr__(self) -> str:
        return (f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"references={self.num_reference_edges}, "
                f"root={self.root!r}:{self._labels[self.root] if self._labels else '?'})")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def reachable_from_root(self) -> set[int]:
        """Oids reachable from the root (a well-formed document covers all)."""
        seen = {self.root}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def check_well_formed(self) -> None:
        """Raise ``ValueError`` unless every node is reachable from the root.

        The paper's datasets are single documents, so every element hangs
        off the document root; indexes rely on this when enumerating rooted
        label paths.
        """
        unreachable = set(self.nodes()) - self.reachable_from_root()
        if unreachable:
            sample = sorted(unreachable)[:5]
            raise ValueError(
                f"{len(unreachable)} nodes unreachable from root, e.g. {sample}")

    def subgraph_labels(self, oids: Iterable[int]) -> list[str]:
        """Labels of the given oids, in the given order (test convenience)."""
        return [self._labels[oid] for oid in oids]
