"""The labeled directed data-graph model from Section 2 of the paper.

An XML document is represented by a labeled directed graph
``G = (V_G, E_G, root_G, Sigma_G)``.  Each node is identified by an integer
*oid* and carries a string label.  Two kinds of edges exist:

* **regular** edges for parent-child element nesting, and
* **reference** edges for ID/IDREF links.

Both kinds participate identically in path-expression semantics (a label
path may traverse either), which is how the paper treats them; the kind is
retained only for statistics and serialisation.

Compact data plane
------------------
Labels are interned at :meth:`DataGraph.add_node` time into a dense
first-occurrence table, so every node also carries an integer *label id*
(``label_ids()``) — the same numbering :func:`repro.indexes.partition.label_blocks`
assigns, which makes level-0 block assignment a straight array copy.

After construction, :meth:`DataGraph.freeze` packs both adjacency
directions into CSR arrays (:class:`repro.graph.compact.CompactAdjacency`)
— ``array('i')`` offsets plus flat targets, optionally ``numpy.int32``
behind a flag.  Frozen graphs answer the same adjacency queries from
contiguous memory; :meth:`thaw` (invoked automatically by the mutating
methods) restores the append-friendly list-of-lists form, so document
updates keep working unchanged.
"""

from __future__ import annotations

import enum
import os
from collections.abc import Iterable, Iterator

from repro.graph.compact import AdjacencyListView, CompactAdjacency, ReadonlyRow

#: Environment flag: freeze() defaults to the numpy CSR backend when set.
_NUMPY_ENV = "REPRO_GRAPH_NUMPY"


class EdgeKind(enum.Enum):
    """Kind of a data-graph edge."""

    REGULAR = "regular"
    REFERENCE = "reference"


def _edge_key(parent: int, child: int) -> int:
    # Packed (parent, child) pair; oids are dense ints far below 2**31.
    return (parent << 32) | child


class DataGraph:
    """A labeled directed graph over integer oids.

    Nodes are created with :meth:`add_node` and receive consecutive oids
    starting at 0.  The first node added is the root by default (it can be
    changed via :attr:`root`).  Edges are added with :meth:`add_edge`.

    Indexes built on top of the graph read its adjacency through
    :meth:`child_rows`/:meth:`parent_rows` (internal fast path) or the
    read-only public accessors; the experiments in the paper never mutate
    the document while an index is live, and incremental maintenance goes
    through the mutating methods here, which automatically :meth:`thaw` a
    frozen graph first.
    """

    __slots__ = ("_labels", "_label_table", "_label_to_id", "_label_ids",
                 "_children", "_parents", "_csr_children", "_csr_parents",
                 "_edge_set", "_edge_kinds", "root", "_label_index_cache")

    def __init__(self) -> None:
        self._labels: list[str] = []
        # Interned labels: dense ids in first-occurrence order.
        self._label_table: list[str] = []
        self._label_to_id: dict[str, int] = {}
        self._label_ids: list[int] = []
        self._children: list[list[int]] | None = []
        self._parents: list[list[int]] | None = []
        self._csr_children: CompactAdjacency | None = None
        self._csr_parents: CompactAdjacency | None = None
        # Packed (parent << 32 | child) keys: O(1) duplicate-edge checks.
        self._edge_set: set[int] = set()
        # (u, v) -> EdgeKind; absent for REGULAR to keep the dict small.
        self._edge_kinds: dict[tuple[int, int], EdgeKind] = {}
        self.root: int = 0
        self._label_index_cache: dict[str, list[int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, label: str) -> int:
        """Add a node with the given label and return its oid."""
        if not isinstance(label, str) or not label:
            raise ValueError(f"node label must be a non-empty string, got {label!r}")
        self._ensure_mutable()
        oid = len(self._labels)
        self._labels.append(label)
        label_id = self._label_to_id.get(label)
        if label_id is None:
            label_id = len(self._label_table)
            self._label_to_id[label] = label_id
            self._label_table.append(label)
        self._label_ids.append(label_id)
        self._children.append([])
        self._parents.append([])
        self._label_index_cache = None
        return oid

    def add_edge(self, parent: int, child: int,
                 kind: EdgeKind = EdgeKind.REGULAR) -> None:
        """Add a directed edge ``parent -> child``.

        Parallel edges are rejected: the index definitions in the paper are
        in terms of edge *existence* between extents, so multi-edges carry
        no information.  The membership check is O(1) against the packed
        edge set, keeping bulk loads linear on high-fanout nodes.
        """
        self._check_oid(parent)
        self._check_oid(child)
        key = _edge_key(parent, child)
        if key in self._edge_set:
            raise ValueError(f"duplicate edge ({parent}, {child})")
        self._ensure_mutable()
        self._edge_set.add(key)
        self._children[parent].append(child)
        self._parents[child].append(parent)
        if kind is not EdgeKind.REGULAR:
            self._edge_kinds[(parent, child)] = kind

    def _check_oid(self, oid: int) -> None:
        if not 0 <= oid < len(self._labels):
            raise KeyError(f"no node with oid {oid}")

    # ------------------------------------------------------------------
    # Freeze / thaw (compact data plane)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Is the adjacency currently in compact CSR form?"""
        return self._children is None

    def freeze(self, use_numpy: bool | None = None) -> "DataGraph":
        """Pack both adjacency directions into CSR arrays.

        Row order is preserved exactly, so everything observable through
        the accessors — including digests — is unchanged.  ``use_numpy``
        selects the ``numpy.int32`` backend; ``None`` defers to the
        ``REPRO_GRAPH_NUMPY`` environment flag.  Returns ``self`` so
        builders can end with ``return graph.freeze()``.
        """
        if self.frozen:
            return self
        numpy_module = None
        if use_numpy is None:
            use_numpy = os.environ.get(_NUMPY_ENV, "") not in ("", "0")
        if use_numpy:
            try:
                import numpy as numpy_module
            except ImportError:  # pragma: no cover - numpy present in CI
                numpy_module = None
        self._csr_children = CompactAdjacency(self._children, numpy_module)
        self._csr_parents = CompactAdjacency(self._parents, numpy_module)
        self._children = None
        self._parents = None
        return self

    def thaw(self) -> "DataGraph":
        """Restore list-of-lists adjacency (the mutable form)."""
        if not self.frozen:
            return self
        csr_children, csr_parents = self._csr_children, self._csr_parents
        self._children = [csr_children.row_list(oid)
                          for oid in range(len(csr_children))]
        self._parents = [csr_parents.row_list(oid)
                         for oid in range(len(csr_parents))]
        self._csr_children = None
        self._csr_parents = None
        return self

    def _ensure_mutable(self) -> None:
        if self.frozen:
            self.thaw()

    def adjacency_nbytes(self) -> int | None:
        """CSR payload bytes when frozen (``None`` while mutable)."""
        if not self.frozen:
            return None
        return self._csr_children.nbytes() + self._csr_parents.nbytes()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    @property
    def num_reference_edges(self) -> int:
        return len(self._edge_kinds)

    def label(self, oid: int) -> str:
        """Return the label of node ``oid``."""
        return self._labels[oid]

    @property
    def labels(self) -> list[str]:
        """The label list indexed by oid (do not mutate)."""
        return self._labels

    @property
    def label_table(self) -> tuple[str, ...]:
        """Distinct labels in first-occurrence (interning) order."""
        return tuple(self._label_table)

    def label_ids(self) -> list[int]:
        """Interned label ids indexed by oid (do not mutate).

        Ids are dense, assigned in first-occurrence order — the same
        numbering :func:`repro.indexes.partition.label_blocks` produces,
        so level-0 partition blocks are a copy of this list.
        """
        return self._label_ids

    def label_id_of(self, label: str) -> int:
        """The interned id of ``label`` (-1 when absent from the graph)."""
        return self._label_to_id.get(label, -1)

    def children(self, oid: int) -> ReadonlyRow:
        """Children of ``oid`` (regular and reference targets alike).

        The returned view is read-only; it compares equal to a plain
        list with the same contents.
        """
        return ReadonlyRow(self.child_rows()[oid])

    def parents(self, oid: int) -> ReadonlyRow:
        """Parents of ``oid`` (regular and reference sources alike).

        Read-only view; see :meth:`children`.
        """
        return ReadonlyRow(self.parent_rows()[oid])

    @property
    def child_lists(self) -> AdjacencyListView:
        """Read-only adjacency (children) view indexed by oid."""
        return AdjacencyListView(self, forward=True)

    @property
    def parent_lists(self) -> AdjacencyListView:
        """Read-only reverse adjacency (parents) view indexed by oid."""
        return AdjacencyListView(self, forward=False)

    def child_rows(self):
        """Raw children adjacency rows (internal fast path).

        ``rows[oid]`` is the row of ``oid``: a list while mutable, a
        read-only CSR slice when frozen.  Callers must treat rows as
        immutable — the public accessors enforce this; this accessor
        skips the wrapper for hot loops.
        """
        if self._children is not None:
            return self._children
        return self._csr_children

    def parent_rows(self):
        """Raw parents adjacency rows (internal fast path); see
        :meth:`child_rows`."""
        if self._parents is not None:
            return self._parents
        return self._csr_parents

    def has_edge(self, parent: int, child: int) -> bool:
        """Does the edge ``parent -> child`` exist? (O(1))."""
        return _edge_key(parent, child) in self._edge_set

    def edge_kind(self, parent: int, child: int) -> EdgeKind:
        """Return the kind of edge ``parent -> child``.

        Raises ``KeyError`` if the edge does not exist.
        """
        if not self.has_edge(parent, child):
            raise KeyError(f"no edge ({parent}, {child})")
        return self._edge_kinds.get((parent, child), EdgeKind.REGULAR)

    def nodes(self) -> range:
        """All oids, in insertion order."""
        return range(len(self._labels))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(parent, child)`` pairs."""
        rows = self.child_rows()
        for parent in range(len(self._labels)):
            for child in rows[parent]:
                yield parent, int(child)

    def alphabet(self) -> set[str]:
        """The set of distinct labels (``Sigma_G``)."""
        return set(self._label_table)

    def nodes_with_label(self, label: str) -> list[int]:
        """All oids carrying ``label`` (cached; cache reset on mutation)."""
        if self._label_index_cache is None:
            index: dict[str, list[int]] = {}
            for oid, node_label in enumerate(self._labels):
                index.setdefault(node_label, []).append(oid)
            self._label_index_cache = index
        return self._label_index_cache.get(label, [])

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, int) and 0 <= oid < len(self._labels)

    def __repr__(self) -> str:
        return (f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"references={self.num_reference_edges}, "
                f"root={self.root!r}:{self._labels[self.root] if self._labels else '?'})")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def reachable_from_root(self) -> set[int]:
        """Oids reachable from the root (a well-formed document covers all)."""
        rows = self.child_rows()
        seen = {self.root}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in rows[node]:
                child = int(child)
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def check_well_formed(self) -> None:
        """Raise ``ValueError`` unless every node is reachable from the root.

        The paper's datasets are single documents, so every element hangs
        off the document root; indexes rely on this when enumerating rooted
        label paths.
        """
        unreachable = set(self.nodes()) - self.reachable_from_root()
        if unreachable:
            sample = sorted(unreachable)[:5]
            raise ValueError(
                f"{len(unreachable)} nodes unreachable from root, e.g. {sample}")

    def subgraph_labels(self, oids: Iterable[int]) -> list[str]:
        """Labels of the given oids, in the given order (test convenience)."""
        return [self._labels[oid] for oid in oids]
