"""XML <-> :class:`DataGraph` conversion.

``parse_xml`` turns an XML document into the labeled directed graph of
Section 2: element nesting becomes regular edges, and ID/IDREF(S) attribute
pairs become reference edges.  A synthetic node labeled ``root_label``
(default ``"root"``) is placed above the document element, matching
Figure 1 of the paper where oid 0 is labeled ``root`` and the document
element ``site`` hangs under it.

``graph_to_xml`` performs the reverse mapping for tree-shaped portions;
reference edges are emitted as ``idref`` attributes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from io import StringIO

from repro.graph.datagraph import DataGraph, EdgeKind

#: Attribute names treated as defining an element's ID.
ID_ATTRIBUTES = ("id", "ID", "xml:id")
#: Attribute names treated as referencing other elements' IDs.
IDREF_ATTRIBUTES = ("idref", "IDREF", "ref")
#: Attribute names holding whitespace-separated lists of IDs.
IDREFS_ATTRIBUTES = ("idrefs", "IDREFS", "refs")


def parse_xml(text: str, root_label: str = "root") -> DataGraph:
    """Parse an XML string into a :class:`DataGraph`.

    Elements become nodes labeled by tag name.  ID/IDREF attributes are
    resolved into reference edges.  Text content is ignored: structural
    indexes summarise structure only.

    Raises ``ValueError`` on dangling IDREFs or duplicate IDs.
    """
    element_root = ET.fromstring(text)
    return _graph_from_element(element_root, root_label)


def parse_xml_file(path: str, root_label: str = "root") -> DataGraph:
    """Parse an XML file into a :class:`DataGraph` (see :func:`parse_xml`)."""
    tree = ET.parse(path)
    return _graph_from_element(tree.getroot(), root_label)


def _graph_from_element(element_root: ET.Element, root_label: str) -> DataGraph:
    graph = DataGraph()
    root_oid = graph.add_node(root_label)
    ids: dict[str, int] = {}
    pending_refs: list[tuple[int, str]] = []

    def visit(element: ET.Element, parent_oid: int) -> None:
        oid = graph.add_node(element.tag)
        graph.add_edge(parent_oid, oid)
        for attr in ID_ATTRIBUTES:
            if attr in element.attrib:
                identifier = element.attrib[attr]
                if identifier in ids:
                    raise ValueError(f"duplicate ID {identifier!r}")
                ids[identifier] = oid
        for attr in IDREF_ATTRIBUTES:
            if attr in element.attrib:
                pending_refs.append((oid, element.attrib[attr]))
        for attr in IDREFS_ATTRIBUTES:
            if attr in element.attrib:
                for identifier in element.attrib[attr].split():
                    pending_refs.append((oid, identifier))
        for child in element:
            visit(child, oid)

    visit(element_root, root_oid)

    for source_oid, identifier in pending_refs:
        if identifier not in ids:
            raise ValueError(f"IDREF to unknown ID {identifier!r}")
        graph.add_edge(source_oid, ids[identifier], kind=EdgeKind.REFERENCE)

    graph.root = root_oid
    return graph


def graph_to_xml(graph: DataGraph) -> str:
    """Serialise a graph back to XML.

    The regular-edge structure must be a tree rooted at the (synthetic)
    root's single child; reference edges become ``idref`` attributes and
    their targets get ``id`` attributes.  Raises ``ValueError`` if the
    regular edges do not form a tree or the root has multiple children.
    """
    regular_children: dict[int, list[int]] = {}
    references: list[tuple[int, int]] = []
    seen_as_child: set[int] = set()
    for parent, child in graph.edges():
        if graph.edge_kind(parent, child) is EdgeKind.REFERENCE:
            references.append((parent, child))
            continue
        if child in seen_as_child:
            raise ValueError(
                f"node {child} has multiple regular parents; not a tree")
        seen_as_child.add(child)
        regular_children.setdefault(parent, []).append(child)

    top_level = regular_children.get(graph.root, [])
    if len(top_level) != 1:
        raise ValueError(
            f"root must have exactly one regular child, has {len(top_level)}")

    ref_targets = {target for _, target in references}
    ref_sources: dict[int, list[int]] = {}
    for source, target in references:
        ref_sources.setdefault(source, []).append(target)

    def render(oid: int, out: StringIO) -> None:
        tag = graph.label(oid)
        attrs = []
        if oid in ref_targets:
            attrs.append(f' id="n{oid}"')
        if oid in ref_sources:
            targets = " ".join(f"n{t}" for t in ref_sources[oid])
            attrs.append(f' idrefs="{targets}"')
        children = regular_children.get(oid, [])
        if children:
            out.write(f"<{tag}{''.join(attrs)}>")
            for child in children:
                render(child, out)
            out.write(f"</{tag}>")
        else:
            out.write(f"<{tag}{''.join(attrs)}/>")

    out = StringIO()
    render(top_level[0], out)
    return out.getvalue()
