"""Label-path machinery over data graphs (Section 2 of the paper).

A *label path* is a sequence of labels ``l0 l1 ... ln``; a *node path*
``v0 v1 ... vn`` is an instance of it when ``label(vi) == li`` and each
``(v(i-1), vi)`` is an edge.  The *target set* of a label path is the set of
end nodes of its instances.  ``length(l0...ln) = n`` (edges, not labels).

``Succ``/``Pred`` are the child/parent image operators used throughout the
refinement pseudocode.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.graph.datagraph import DataGraph


def succ_set(graph: DataGraph, oids: Iterable[int]) -> set[int]:
    """``Succ(s)``: all data nodes that are children of some node in ``s``."""
    children = graph.child_rows()
    result: set[int] = set()
    for oid in oids:
        result.update(children[oid])
    return result


def pred_set(graph: DataGraph, oids: Iterable[int]) -> set[int]:
    """``Pred(s)``: all data nodes that are parents of some node in ``s``."""
    parents = graph.parent_rows()
    result: set[int] = set()
    for oid in oids:
        result.update(parents[oid])
    return result


def label_path_target_set(graph: DataGraph, labels: Sequence[str],
                          start: Iterable[int] | None = None) -> set[int]:
    """Target set of the label path ``labels`` in the data graph.

    Instances may start anywhere (``//`` semantics) unless ``start`` is
    given, in which case instances must begin at a node in ``start``.
    A label of ``"*"`` matches any node label.
    """
    if not labels:
        return set()
    node_labels = graph.labels
    first = labels[0]
    if start is None:
        if first == "*":
            frontier = set(graph.nodes())
        else:
            frontier = set(graph.nodes_with_label(first))
    else:
        frontier = {oid for oid in start
                    if first == "*" or node_labels[oid] == first}
    children = graph.child_rows()
    for label in labels[1:]:
        next_frontier: set[int] = set()
        for oid in frontier:
            for child in children[oid]:
                if label == "*" or node_labels[child] == label:
                    next_frontier.add(child)
        frontier = next_frontier
        if not frontier:
            break
    return frontier


def enumerate_rooted_label_paths(graph: DataGraph, max_length: int,
                                 include_root_label: bool = False,
                                 max_paths: int | None = None
                                 ) -> list[tuple[str, ...]]:
    """All distinct label paths of length up to ``max_length`` starting at
    the root's children.

    This is the pool the paper's workload generator draws from ("we generate
    all possible label paths of length up to 9 in the data graph"; the length
    limit prevents paths through reference cycles from being enumerated
    forever).  Enumeration is a DataGuide-style subset construction: each
    distinct label path is expanded once, carrying the set of data nodes
    reachable by it, so the cost is bounded by the number of *distinct*
    paths rather than the number of node-path instances.

    ``length`` here counts edges: a single label is a path of length 0.
    When ``include_root_label`` is true the synthetic root label is kept as
    the first component; the paper's queries omit it, which is the default.

    ``max_paths`` caps the pool (breadth-first, shortest paths first) as a
    safety valve for pathological documents; ``None`` means no cap.
    """
    if max_length < 0:
        raise ValueError("max_length must be >= 0")
    node_labels = graph.labels
    children = graph.child_rows()

    if include_root_label:
        seeds: list[tuple[tuple[str, ...], frozenset[int]]] = [
            ((node_labels[graph.root],), frozenset({graph.root}))]
    else:
        by_label: dict[str, set[int]] = {}
        for child in children[graph.root]:
            by_label.setdefault(node_labels[child], set()).add(child)
        seeds = [((label,), frozenset(nodes))
                 for label, nodes in sorted(by_label.items())]

    paths: list[tuple[str, ...]] = []
    frontier = seeds
    for path, _ in frontier:
        paths.append(path)
        if max_paths is not None and len(paths) >= max_paths:
            return paths

    # BFS by path length so a cap keeps the shortest (most common) paths.
    for _ in range(max_length):
        next_frontier: list[tuple[tuple[str, ...], frozenset[int]]] = []
        for path, nodes in frontier:
            extensions: dict[str, set[int]] = {}
            for oid in nodes:
                for child in children[oid]:
                    extensions.setdefault(node_labels[child], set()).add(child)
            for label, targets in sorted(extensions.items()):
                extended = path + (label,)
                next_frontier.append((extended, frozenset(targets)))
                paths.append(extended)
                if max_paths is not None and len(paths) >= max_paths:
                    return paths
        if not next_frontier:
            break
        frontier = next_frontier
    return paths


def path_length(labels: Sequence[str]) -> int:
    """Length of a label path in edges (``len(labels) - 1``)."""
    if not labels:
        raise ValueError("empty label path has no length")
    return len(labels) - 1
