"""Fluent construction helpers for :class:`~repro.graph.datagraph.DataGraph`.

Tests and the paper's running examples build small graphs by hand; the
builder keeps those definitions readable::

    g = (GraphBuilder()
         .node("r")                      # oid 0 becomes the root
         .node("a", parent=0)           # oid 1
         .node("b", parent=1)           # oid 2
         .edge(0, 2)                     # extra edge
         .ref(2, 1)                      # reference edge
         .build())
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.datagraph import DataGraph, EdgeKind


class GraphBuilder:
    """Incrementally assemble a :class:`DataGraph`."""

    def __init__(self) -> None:
        self._graph = DataGraph()

    def node(self, label: str, parent: int | None = None,
             parents: Iterable[int] | None = None) -> "GraphBuilder":
        """Add a node; optionally attach it under one or more parents."""
        oid = self._graph.add_node(label)
        if parent is not None:
            self._graph.add_edge(parent, oid)
        for extra_parent in parents or ():
            self._graph.add_edge(extra_parent, oid)
        return self

    def add(self, label: str, parent: int | None = None) -> int:
        """Like :meth:`node` but return the new oid instead of ``self``."""
        oid = self._graph.add_node(label)
        if parent is not None:
            self._graph.add_edge(parent, oid)
        return oid

    def edge(self, parent: int, child: int) -> "GraphBuilder":
        """Add a regular edge."""
        self._graph.add_edge(parent, child)
        return self

    def ref(self, source: int, target: int) -> "GraphBuilder":
        """Add a reference (ID/IDREF) edge."""
        self._graph.add_edge(source, target, kind=EdgeKind.REFERENCE)
        return self

    def root(self, oid: int) -> "GraphBuilder":
        """Designate ``oid`` as the root (default: oid 0)."""
        if oid not in self._graph:
            raise KeyError(f"no node with oid {oid}")
        self._graph.root = oid
        return self

    def build(self, check: bool = True) -> DataGraph:
        """Finish building; verifies reachability unless ``check=False``."""
        if check:
            self._graph.check_well_formed()
        return self._graph


def graph_from_edges(labels: list[str],
                     edges: Iterable[tuple[int, int]],
                     references: Iterable[tuple[int, int]] = (),
                     root: int = 0) -> DataGraph:
    """Build a graph from parallel label/edge lists (compact test fixture).

    ``labels[i]`` is the label of oid ``i``; ``edges`` and ``references``
    are ``(parent, child)`` pairs.
    """
    graph = DataGraph()
    for label in labels:
        graph.add_node(label)
    for parent, child in edges:
        graph.add_edge(parent, child)
    for source, target in references:
        graph.add_edge(source, target, kind=EdgeKind.REFERENCE)
    graph.root = root
    graph.check_well_formed()
    return graph
