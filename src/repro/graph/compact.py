"""Compact adjacency storage for frozen data graphs.

:class:`CompactAdjacency` is a CSR (compressed sparse row) encoding of a
list-of-lists adjacency: one flat ``array('i')`` of targets plus an
``array('i')`` of per-node offsets.  Row *order is preserved exactly* —
the paper's DataGuide and rooted-path enumeration depend on insertion
order, and digests over adjacency must not move under ``freeze()``.

Rows are handed out as read-only ``memoryview`` slices (zero-copy), or
read-only ``numpy.int32`` slices when the numpy backend is requested.
The public :class:`ReadonlyRow`/:class:`AdjacencyListView` wrappers give
the same protection to the *unfrozen* list-of-lists backing, closing the
old aliasing hole where ``graph.children(oid)`` returned the live
internal list and a caller mutation silently corrupted the graph and
every index fingerprint built over it.
"""

from __future__ import annotations

import struct
from array import array
from collections.abc import Iterator, Sequence

__all__ = ["CompactAdjacency", "ReadonlyRow", "AdjacencyListView",
           "row_from_bytes"]


def row_from_bytes(payload: bytes) -> list[int]:
    """Decode one :meth:`CompactAdjacency.row_bytes` payload.

    The inverse used by the paged-adjacency reader
    (:class:`repro.storage.spill.PagedAdjacency`).
    """
    count = len(payload) // 4
    return list(struct.unpack(f"<{count}I", payload))

_MUTATION_ERROR = "adjacency views are read-only; mutate via DataGraph.add_edge"


class CompactAdjacency:
    """Frozen CSR adjacency: ``offsets[oid]..offsets[oid+1]`` slices
    ``targets`` into the (insertion-ordered) row of node ``oid``."""

    __slots__ = ("_offsets", "_targets", "_view", "_numpy")

    def __init__(self, rows: Sequence[Sequence[int]],
                 numpy_module=None) -> None:
        offsets = array("i", [0])
        targets = array("i")
        total = 0
        for row in rows:
            targets.extend(row)
            total += len(row)
            offsets.append(total)
        self._numpy = numpy_module
        if numpy_module is not None:
            np_offsets = numpy_module.asarray(offsets, dtype=numpy_module.int32)
            np_targets = numpy_module.asarray(targets, dtype=numpy_module.int32)
            np_offsets.flags.writeable = False
            np_targets.flags.writeable = False
            self._offsets = np_offsets
            self._targets = np_targets
            self._view = np_targets  # slices inherit the read-only flag
        else:
            self._offsets = offsets
            self._targets = targets
            self._view = memoryview(targets).toreadonly()

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, oid: int):
        if oid < 0:
            raise IndexError(oid)
        start, stop = self._offsets[oid], self._offsets[oid + 1]
        return self._view[start:stop]

    def __iter__(self) -> Iterator:
        for oid in range(len(self)):
            yield self[oid]

    def degree(self, oid: int) -> int:
        return int(self._offsets[oid + 1] - self._offsets[oid])

    @property
    def num_edges(self) -> int:
        return len(self._targets)

    def row_list(self, oid: int) -> list[int]:
        """Row as a plain ``list[int]`` (thaw/serialisation path)."""
        return [int(v) for v in self[oid]]

    def csr_arrays(self) -> tuple:
        """The raw ``(offsets, targets)`` CSR pair.

        Offsets has ``len(self) + 1`` entries; ``targets[offsets[i]:
        offsets[i+1]]`` is row ``i``.  Both are ``array('i')`` (or
        read-only ``numpy.int32`` under the numpy backend); callers must
        treat them as immutable.  This is the bulk-consumer entry point:
        the vectorized partition refiner gathers ``blocks[targets]``
        straight off these arrays instead of iterating rows.
        """
        return self._offsets, self._targets

    def row_bytes(self, oid: int) -> bytes:
        """One row as pinned little-endian ``u32`` payload bytes.

        This is the record format of adjacency *segments* (see
        :func:`repro.storage.spill.build_adjacency_segment`): stable
        across host endianness, decoded by :func:`row_from_bytes`.
        """
        row = self[oid]
        return struct.pack(f"<{len(row)}I", *(int(v) for v in row))

    def nbytes(self) -> int:
        """Approximate payload bytes (offsets + targets)."""
        if self._numpy is not None:
            return int(self._offsets.nbytes + self._targets.nbytes)
        return (len(self._offsets) + len(self._targets)) * self._offsets.itemsize


class ReadonlyRow(Sequence):
    """A read-only view of one adjacency row.

    Compares equal to any same-length int sequence with the same order
    (tests and callers write ``graph.children(0) == [1]``).  Mutation
    attempts raise ``TypeError``.
    """

    __slots__ = ("_row",)

    def __init__(self, row) -> None:
        self._row = row

    def __len__(self) -> int:
        return len(self._row)

    def __iter__(self):
        return iter(self._row)

    def __contains__(self, value: object) -> bool:
        return value in self._row

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [int(v) for v in self._row[index]]
        return int(self._row[index])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ReadonlyRow):
            other = other._row
        if isinstance(other, (list, tuple, array, memoryview)) \
                or type(other).__module__ == "numpy":
            if len(other) != len(self._row):
                return False
            return all(int(a) == int(b) for a, b in zip(self._row, other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"ReadonlyRow({[int(v) for v in self._row]})"

    def __setitem__(self, index, value) -> None:
        raise TypeError(_MUTATION_ERROR)

    def __delitem__(self, index) -> None:
        raise TypeError(_MUTATION_ERROR)

    def append(self, value) -> None:
        raise TypeError(_MUTATION_ERROR)

    def extend(self, values) -> None:
        raise TypeError(_MUTATION_ERROR)

    def insert(self, index, value) -> None:
        raise TypeError(_MUTATION_ERROR)

    def remove(self, value) -> None:
        raise TypeError(_MUTATION_ERROR)

    def pop(self, index=-1) -> None:
        raise TypeError(_MUTATION_ERROR)

    def clear(self) -> None:
        raise TypeError(_MUTATION_ERROR)


class AdjacencyListView:
    """Read-only, always-current view of a graph's full adjacency.

    Delegates to the graph on every access, so one view stays valid
    across ``freeze()``/``thaw()`` transitions.  Indexing yields
    :class:`ReadonlyRow`; mutation attempts raise ``TypeError``.
    """

    __slots__ = ("_graph", "_forward")

    def __init__(self, graph, forward: bool) -> None:
        self._graph = graph
        self._forward = forward

    def _rows(self):
        return (self._graph.child_rows() if self._forward
                else self._graph.parent_rows())

    def __len__(self) -> int:
        return self._graph.num_nodes

    def __getitem__(self, oid: int) -> ReadonlyRow:
        return ReadonlyRow(self._rows()[oid])

    def __iter__(self) -> Iterator[ReadonlyRow]:
        rows = self._rows()
        for oid in range(len(self)):
            yield ReadonlyRow(rows[oid])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AdjacencyListView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            rows = self._rows()
            return all(ReadonlyRow(rows[oid]) == other[oid]
                       for oid in range(len(self)))
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"AdjacencyListView({'children' if self._forward else 'parents'}, "
                f"nodes={len(self)})")

    def __setitem__(self, oid, value) -> None:
        raise TypeError(_MUTATION_ERROR)

    def __delitem__(self, oid) -> None:
        raise TypeError(_MUTATION_ERROR)

    def append(self, value) -> None:
        raise TypeError(_MUTATION_ERROR)
