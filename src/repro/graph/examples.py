"""The paper's running example graphs, as executable fixtures.

Each function builds the data graph of one figure of the paper.  The test
suite asserts the behaviours the paper derives from them (target sets,
bisimilarity relations, and the exact partitions the refinement
procedures produce).
"""

from __future__ import annotations

from repro.graph.builder import graph_from_edges
from repro.graph.datagraph import DataGraph


def figure1_auction_site() -> DataGraph:
    """Figure 1: the 21-node auction-site graph with reference edges.

    The paper reads off two target sets from it:
    ``/site/people/person -> {7, 8, 9}`` and
    ``/site/regions/*/item -> {12, 13, 14}``.
    """
    labels = ["root", "site", "regions", "people", "auctions",
              "africa", "asia", "person", "person", "person",
              "auction", "auction", "item", "item", "item",
              "item", "seller", "bidder", "bidder", "seller", "item"]
    edges = [(0, 1),
             (1, 2), (1, 3), (1, 4),
             (2, 5), (2, 6),
             (3, 7), (3, 8), (3, 9),
             (4, 10), (4, 11),
             (5, 12), (5, 13), (6, 14),
             (10, 15), (10, 16), (10, 17),
             (11, 18), (11, 19), (11, 20)]
    references = [(16, 7), (17, 8), (18, 8), (19, 9), (15, 12), (20, 14)]
    return graph_from_edges(labels, edges, references)


def figure2_same_paths_not_bisimilar() -> DataGraph:
    """Figure 2: equal incoming label-path sets without bisimilarity.

    The paper draws two separate graphs; this fixture merges them under a
    single root so the comparison happens inside one graph (which is what
    an index sees).  Nodes 6 (``d1``) and 7 (``d2``) both have exactly the
    incoming label paths ``{d, c/d, a/c/d, b/c/d, r/a/c/d, r/b/c/d}``:
    ``d1`` through two separate ``c`` parents with one ``a``/``b`` parent
    each, ``d2`` through one ``c`` parent with both.  They are 1-bisimilar
    but not 2-bisimilar, so the 1-index and every A(k) with ``k >= 2``
    separates them while A(0)/A(1) do not.
    """
    labels = ["r", "a", "b", "c", "c", "c", "d", "d"]
    edges = [(0, 1), (0, 2),       # r -> a, r -> b
             (1, 3), (2, 4),       # a -> c1, b -> c2
             (1, 5), (2, 5),       # a -> c3, b -> c3
             (3, 6), (4, 6),       # c1 -> d1, c2 -> d1
             (5, 7)]               # c3 -> d2
    return graph_from_edges(labels, edges)


def figure3_refinement_comparison() -> DataGraph:
    """Figure 3: D(k)-promote vs M(k) refinement for FUP ``r/a/b``.

    The published drawing is a chain of ``b`` nodes hanging off ``a`` with
    ``c``/``d`` leaves (its exact edges are not fully recoverable from the
    figure; this fixture uses a six-node ``b`` chain, which reproduces the
    documented outcome): the FUP's target set is ``{4}``; the M(k)-index
    refines to exactly ``{4}`` with ``k = 2`` plus one remainder node
    ``{5..9}`` keeping ``k = 0``, while D(k)-promote additionally shatters
    irrelevant ``b`` nodes.
    """
    labels = ["r", "a", "d", "c", "b", "b", "b", "b", "b", "b"]
    edges = [(0, 1),                                # r -> a
             (1, 4),                                # a -> b4
             (4, 5), (5, 6), (6, 7), (7, 8), (8, 9),  # b chain
             (9, 2), (9, 3)]                        # b9 -> d, b9 -> c
    return graph_from_edges(labels, edges)


def figure4_overqualified_parents() -> tuple[DataGraph, list[tuple[set[int], int]]]:
    """Figure 4: over-refinement due to overqualified parents.

    Returns the data graph plus the hand-built starting partition of the
    figure's part (b): the two ``b`` nodes sit in separate index nodes
    with ``k = 2`` (overqualified), while ``c = {4, 5}`` has ``k = 0``.
    Promoting ``c`` to ``k = 1`` splits it under D(k)/M(k) (part (c))
    although nodes 4 and 5 are 1-bisimilar; the M*(k)-index keeps them
    together (part (d)) by consulting the 0-bisimulation information.
    """
    labels = ["r", "a", "b", "b", "c", "c"]
    edges = [(0, 1),          # r -> a
             (1, 2), (1, 3),  # a -> b2, a -> b3
             (2, 4), (3, 5)]  # b2 -> c4, b3 -> c5
    graph = graph_from_edges(labels, edges)
    initial_partition = [({0}, 1), ({1}, 1), ({2}, 2), ({3}, 2), ({4, 5}, 0)]
    return graph, initial_partition


def figure7_mstar_example() -> DataGraph:
    """Figure 7: the data graph of the three-component M*(k) example.

    ``r`` has children ``a`` (oid 1) and ``b`` (oid 3); ``b`` has an ``a``
    child (oid 2); each ``a`` has one ``c`` child (4 under 1, 5 under 2)
    and two further ``c`` nodes (6, 7) hang under ``a`` 1.  Supporting the
    FUP ``//b/a/c`` yields components where ``c{5}`` reaches ``k = 2`` —
    the top-down walk of Section 4.1 resolves ``//b/a/c`` to ``{5}``.
    """
    labels = ["r", "a", "a", "b", "c", "c", "c", "c"]
    edges = [(0, 1), (0, 3),  # r -> a1, r -> b
             (3, 2),          # b -> a2
             (1, 4), (2, 5),  # a1 -> c4, a2 -> c5
             (1, 6), (1, 7)]  # a1 -> c6, a1 -> c7
    return graph_from_edges(labels, edges)
