"""networkx interoperability for data graphs and index graphs.

Lets users bring documents from (or push summaries into) the wider
Python graph ecosystem:

* :func:`to_networkx` / :func:`from_networkx` convert a
  :class:`~repro.graph.datagraph.DataGraph` to/from a
  ``networkx.DiGraph`` with ``label`` node attributes and ``kind`` edge
  attributes;
* :func:`index_to_networkx` exports any of the package's index graphs
  (extents, similarity values, edges) for visualisation or analysis.
"""

from __future__ import annotations

import networkx as nx

from repro.graph.datagraph import DataGraph, EdgeKind
from repro.indexes.base import IndexGraph


def to_networkx(graph: DataGraph) -> "nx.DiGraph":
    """Convert a data graph to a ``networkx.DiGraph``.

    Nodes carry ``label``; edges carry ``kind`` (``"regular"`` or
    ``"reference"``); the graph itself records ``root``.
    """
    digraph = nx.DiGraph(root=graph.root)
    for oid in graph.nodes():
        digraph.add_node(oid, label=graph.label(oid))
    for parent, child in graph.edges():
        digraph.add_edge(parent, child,
                         kind=graph.edge_kind(parent, child).value)
    return digraph


def from_networkx(digraph: "nx.DiGraph", root: int | None = None) -> DataGraph:
    """Convert a ``networkx.DiGraph`` into a data graph.

    Every node needs a ``label`` attribute; edges may carry ``kind``
    (default regular).  Node identifiers are renumbered to consecutive
    oids in sorted order; ``root`` defaults to the graph attribute or
    the smallest node.
    """
    if root is None:
        root = digraph.graph.get("root")
    ordering = sorted(digraph.nodes)
    if root is None:
        if not ordering:
            raise ValueError("cannot convert an empty graph")
        root = ordering[0]
    if root not in digraph.nodes:
        raise ValueError(f"root {root!r} is not a node")
    oid_of = {node: position for position, node in enumerate(ordering)}
    graph = DataGraph()
    for node in ordering:
        attributes = digraph.nodes[node]
        if "label" not in attributes:
            raise ValueError(f"node {node!r} has no 'label' attribute")
        graph.add_node(attributes["label"])
    for source, target, attributes in digraph.edges(data=True):
        kind = (EdgeKind.REFERENCE
                if attributes.get("kind") == EdgeKind.REFERENCE.value
                else EdgeKind.REGULAR)
        graph.add_edge(oid_of[source], oid_of[target], kind=kind)
    graph.root = oid_of[root]
    graph.check_well_formed()
    return graph


def index_to_networkx(index_graph: IndexGraph) -> "nx.DiGraph":
    """Export an index graph (nodes = extents) as a ``networkx.DiGraph``.

    Nodes carry ``label``, ``k``, ``extent`` (sorted tuple) and ``size``.
    """
    digraph = nx.DiGraph()
    for nid, node in index_graph.nodes.items():
        digraph.add_node(nid, label=node.label, k=node.k,
                         extent=tuple(node.extent),
                         size=len(node.extent))
    for nid in index_graph.nodes:
        for child in index_graph.children_of(nid):
            digraph.add_edge(nid, child)
    return digraph
