"""Out-of-core construction bench: spill builds on datasets >> budget.

One row per (scale, family): the A(k) extent segment and the M*(k)
resolution hierarchy are built through the PR 9 spill path
(:mod:`repro.storage.spill`) with a memory budget of a quarter of the
extent payload, so the dataset is >= 4x the budget and the build *must*
spill.  Each row asserts, before it reports anything:

* **digest equality** — the segment's canonical extent digest matches
  the in-RAM builder's, record for record;
* **bounded peak** — the tracked data-plane working set (pair buffer +
  merge chunks + largest extent + open page) stays under 1.5x budget;
* **real spills** — at least one run hit disk (a build that fit in RAM
  proves nothing about the spill path).

The A(k) row additionally replays a query workload through
:class:`~repro.indexes.segmented.SegmentAkIndex` and spot-checks every
answer set against both the in-RAM ``AkIndex`` and the data-graph
oracle (:func:`~repro.queries.evaluator.evaluate_on_data_graph`),
recording the cost curve — page reads and index visits by query length
— that shows short queries touching few pages.

``ru_maxrss`` is recorded informationally only: the interpreter
baseline (tens of MB) dwarfs any test-sized budget, so the acceptance
criterion gates on ``peak_tracked_bytes``, which is what the spill
path actually controls.  See ``docs/storage.md``.
"""

from __future__ import annotations

import os
import resource
import tempfile

from repro.experiments.config import ExperimentConfig, dataset_for
from repro.indexes.aindex import AkIndex
from repro.indexes.segmented import SegmentAkIndex
from repro.queries.evaluator import evaluate_on_data_graph
from repro.queries.workload import Workload
from repro.storage.spill import (
    build_ak_segment,
    build_hierarchy_segment,
    inram_ak_digest,
    inram_hierarchy_digest,
)

#: Peak tracked working set must stay under this multiple of the budget.
PEAK_BUDGET_RATIO = 1.5
#: Extent payload must be at least this multiple of the budget.
MIN_DATASET_RATIO = 4.0
#: Floor the budget so the sorter's own minimum is always satisfied.
MIN_BUDGET_BYTES = 4096


def _ru_maxrss_bytes() -> int:
    """Process peak RSS in bytes (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _budget_for(payload_bytes: int) -> int:
    return max(MIN_BUDGET_BYTES, payload_bytes // int(MIN_DATASET_RATIO))


def _page_size_for(budget: int) -> int:
    """Keep the open segment page small relative to tiny test budgets."""
    return max(512, min(4096, budget // 8))


def _report_row(report, dataset: str, scale: float) -> dict:
    return {
        "dataset": dataset,
        "scale": scale,
        "family": report.kind,
        "records": report.records,
        "pairs": report.pairs,
        "spills": report.spills,
        "runs": report.runs,
        "budget_bytes": report.budget_bytes,
        "payload_bytes": report.payload_bytes,
        "peak_tracked_bytes": report.peak_tracked_bytes,
        "peak_ratio": round(report.peak_ratio, 4),
        "dataset_ratio": round(report.dataset_ratio, 4),
        "build_s": round(report.seconds, 6),
        "ru_maxrss_bytes": _ru_maxrss_bytes(),
        "digest": report.digest,
    }


def _query_cost_curve(segment_index: SegmentAkIndex, ram_index: AkIndex,
                      graph, queries, oracle_every: int) -> dict:
    """Replay ``queries``; assert parity; return the cost curve."""
    pool = segment_index.pool
    by_length: dict[int, dict[str, float]] = {}
    oracle_checked = 0
    for position, expr in enumerate(queries):
        pool.reset_stats()
        segment_result = segment_index.query(expr)
        ram_result = ram_index.query(expr)
        if segment_result.answers != ram_result.answers:
            raise AssertionError(
                f"segment A(k) disagrees with in-RAM A(k) on {expr}: "
                f"{len(segment_result.answers)} vs "
                f"{len(ram_result.answers)} answers")
        if oracle_every and position % oracle_every == 0:
            expected = evaluate_on_data_graph(graph, expr)
            if segment_result.answers != expected:
                raise AssertionError(
                    f"segment A(k) disagrees with the data-graph oracle "
                    f"on {expr}")
            oracle_checked += 1
        bucket = by_length.setdefault(len(expr.labels), {
            "queries": 0, "page_reads": 0, "pool_hits": 0,
            "index_visits": 0})
        bucket["queries"] += 1
        bucket["page_reads"] += pool.reads
        bucket["pool_hits"] += pool.hits
        bucket["index_visits"] += segment_result.cost.index_visits
    curve = []
    for length in sorted(by_length):
        bucket = by_length[length]
        count = bucket["queries"]
        curve.append({
            "length": length,
            "queries": count,
            "mean_page_reads": round(bucket["page_reads"] / count, 3),
            "mean_pool_hits": round(bucket["pool_hits"] / count, 3),
            "mean_index_visits": round(bucket["index_visits"] / count, 3),
        })
    return {"curve": curve, "queries": len(queries),
            "oracle_checked": oracle_checked}


def run_ooc_bench(dataset: str, base: ExperimentConfig,
                  scales: tuple[float, ...], k: int,
                  queries: int, max_query_length: int,
                  seed: int) -> list[dict]:
    """One A(k) row and one M*(k) hierarchy row per scale."""
    rows: list[dict] = []
    for scale in scales:
        exp = ExperimentConfig(scale=scale, num_queries=base.num_queries,
                               seed=base.seed)
        graph = dataset_for(dataset, exp)
        # A(k) extents partition the data nodes; the hierarchy repeats
        # that per level — so the payload is known before building and
        # the budget can be set to force dataset_ratio >= 4 exactly.
        ak_payload = 4 * graph.num_nodes
        hier_payload = 4 * (k + 1) * graph.num_nodes

        with tempfile.TemporaryDirectory(prefix="repro-ooc-") as tmp:
            ak_budget = _budget_for(ak_payload)
            ak_path = os.path.join(tmp, f"ak{k}.seg")
            ak_report = build_ak_segment(
                graph, k, ak_path, budget_bytes=ak_budget,
                page_size=_page_size_for(ak_budget))
            ram_index = AkIndex(graph, k)
            ak_row = _report_row(ak_report, dataset, scale)
            ak_row["digest_matches_inram"] = (
                ak_report.digest == inram_ak_digest(ram_index))
            if not ak_row["digest_matches_inram"]:
                raise AssertionError(
                    f"A({k}) spill build digest diverges from the in-RAM "
                    f"build at scale {scale}")

            workload = Workload.generate(graph, num_queries=queries,
                                         max_length=max_query_length,
                                         seed=seed)
            with SegmentAkIndex(ak_path, graph) as segment_index:
                ak_row["query_check"] = _query_cost_curve(
                    segment_index, ram_index, graph, workload.queries,
                    oracle_every=max(1, len(workload.queries) // 8))
            rows.append(ak_row)

            hier_budget = _budget_for(hier_payload)
            hier_path = os.path.join(tmp, f"mstar{k}.seg")
            hier_report = build_hierarchy_segment(
                graph, k, hier_path, budget_bytes=hier_budget,
                page_size=_page_size_for(hier_budget))
            hier_row = _report_row(hier_report, dataset, scale)
            hier_row["digest_matches_inram"] = (
                hier_report.digest == inram_hierarchy_digest(graph, k))
            if not hier_row["digest_matches_inram"]:
                raise AssertionError(
                    f"M*({k}) hierarchy spill build digest diverges from "
                    f"the in-RAM levels at scale {scale}")
            rows.append(hier_row)
    return rows


def ooc_criteria(rows: list[dict]) -> dict:
    """Fold the ooc rows into the report-level acceptance criteria."""
    if not rows:
        return {"ooc_ok": False, "ooc_rows": 0}
    digests_ok = all(row["digest_matches_inram"] for row in rows)
    spills_ok = all(row["spills"] > 0 for row in rows)
    peak_worst = max(row["peak_ratio"] for row in rows)
    ratio_ak = [row["dataset_ratio"] for row in rows
                if row["family"].startswith("A(")]
    ratio_hier = [row["dataset_ratio"] for row in rows
                  if row["family"].startswith("M*(")]
    dataset_ok = (bool(ratio_ak) and max(ratio_ak) >= MIN_DATASET_RATIO
                  and bool(ratio_hier)
                  and max(ratio_hier) >= MIN_DATASET_RATIO)
    queries_ok = all(row["query_check"]["oracle_checked"] > 0
                     for row in rows if "query_check" in row)
    return {
        "ooc_rows": len(rows),
        "ooc_digest_ok": digests_ok,
        "ooc_spills_ok": spills_ok,
        "ooc_peak_ratio_worst": round(peak_worst, 4),
        "ooc_peak_budget": PEAK_BUDGET_RATIO,
        "ooc_dataset_ratio_target": MIN_DATASET_RATIO,
        "ooc_dataset_ratio_ok": dataset_ok,
        "ooc_ok": bool(digests_ok and spills_ok and dataset_ok
                       and queries_ok
                       and peak_worst <= PEAK_BUDGET_RATIO),
    }
