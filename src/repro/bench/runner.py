"""Construction + replay benchmarks with a persisted JSON trajectory.

Two benchmark groups, each measuring an optimised hot path against the
reference implementation that defines its semantics:

* **construction** — A(k)/1-index partition refinement.  Baseline: the
  chained :func:`repro.indexes.partition.refine_once` reference (full
  pass over every node per round).  Fast path:
  :class:`~repro.indexes.partition.PartitionRefiner` (signature-based
  worklist refinement).  Both produce identical partitions; the bench
  asserts that before it reports a speedup.
* **replay** — repeated-FUP workload replay through
  :class:`~repro.core.engine.AdaptiveIndexEngine`.  Baseline: cache
  disabled (every repeat re-runs evaluation + validation).  Fast path:
  the refinement-aware result cache.  Several passes over the same
  workload model the paper's FUP regime, where queries repeat.

A third group, **trace_overhead**, bounds what the PR 3 observability
layer costs when the tracer is disabled (the production default); see
:func:`run_trace_overhead_bench`.  The acceptance budget is 5% of
replay time.

A fourth group, **serving**, sweeps the PR 4 concurrent serving layer
(:mod:`repro.serving`) over worker counts on the cached replay workload
interleaved with document updates, records throughput scaling, and
asserts the final-answers digest agrees across worker counts; see
:func:`run_serving_bench`.  The acceptance criterion is >= 1.5x replay
throughput at 4 workers vs 1.

A fifth group, **compact**, measures the PR 6 compact data plane
(interned labels + CSR adjacency in :mod:`repro.graph`, sorted-int-array
extents in :mod:`repro.core.extents`) against the set-based reference
semantics it replaced: snapshot extent pinning, canonical digest
construction, extent intersection, partition-refinement construction on
a frozen vs mutable graph, and bytes per extent member; see
:func:`run_compact_bench`.  Every timed line asserts result parity with
the set path before reporting a speedup.  The acceptance criterion is
>= 1.5x on at least one line.

A sixth group, **sharding**, sweeps the PR 7 sharded index service
(:mod:`repro.sharding`) over shard counts on the update-interleaved
replay workload, records per-shard placement/segment bookkeeping, and
asserts the answers-only digest of every sharded run is byte-identical
to the single-shard engine's; see :func:`run_shard_bench`.

A seventh group, **network**, replays the same workload *over the
wire* through the PR 8 TCP front-end (:mod:`repro.net`) at a sweep of
client connection counts (plus one sharded row), records p50/p95/p99
request latency and saturation throughput, and asserts every
over-the-wire answers digest is byte-identical to an in-process replay
of the same configuration; see :func:`run_net_bench`.

An eighth group, **ooc**, sweeps the PR 9 out-of-core spill path
(:mod:`repro.storage.spill`) over XMark scales: A(k) and M*(k)
hierarchy segments are built under a memory budget of a quarter of the
extent payload (so the dataset is >= 4x the budget and runs must hit
disk), digest-checked against the in-RAM builders, peak-bounded at
1.5x budget, and the segment-backed A(k) is query-spot-checked against
both ``AkIndex`` and the data-graph oracle; see
:func:`repro.bench.ooc.run_ooc_bench`.

``run_bench`` also runs a small differential-oracle campaign (which
includes cache-on vs cache-off equivalence checks, and the updates
axis) so the artifact records that the measured configuration is
*correct*, not just fast.  The JSON lands at the repository root as
``BENCH_pr9.json`` by default; CI runs ``repro bench --smoke`` and
fails on any oracle discrepancy.  When a committed ``BENCH_pr4.json``
is readable from the working directory, the report also records
construction/replay wall-time deltas against that artifact under
``vs_pr4``, and the criteria assert the replay lines stay at or above
the PR 4 wall times (the PR 6 replay regression fix).
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable

from repro.bench.ooc import ooc_criteria, run_ooc_bench
from repro.core.engine import AdaptiveIndexEngine
from repro.experiments.config import ExperimentConfig, dataset_for
from repro.graph.datagraph import DataGraph
from repro.indexes.aindex import AkIndex
from repro.indexes.mindex import MkIndex
from repro.indexes.mstarindex import MStarIndex
from repro.indexes.oneindex import OneIndex
from repro.indexes.partition import (
    full_bisimulation_blocks,
    kbisimulation_blocks,
    label_blocks,
    refine_once,
)
from repro.queries.workload import Workload


@dataclass(frozen=True)
class BenchConfig:
    """Knobs for one bench run (``smoke`` shrinks everything for CI)."""

    scale: float = 0.05
    seed: int = 1
    datasets: tuple[str, ...] = ("xmark", "nasa")
    ak_resolutions: tuple[int, ...] = (2, 4, 8)
    replay_queries: int = 120
    replay_passes: int = 3
    max_query_length: int = 6
    verify_rounds: int = 6
    #: Worker counts for the concurrent serving throughput sweep.
    serving_worker_counts: tuple[int, ...] = (1, 2, 4, 8)
    #: Simulated per-query client I/O for the serving sweep (seconds).
    #: This is what worker threads overlap under the GIL — see
    #: ``docs/serving.md`` for why 0 here would collapse scaling to ~1x.
    serving_stall_s: float = 0.002
    #: Document-update rounds interleaved into each serving replay.
    serving_update_rounds: int = 4
    #: Shard counts for the sharded fan-out replay sweep (each is
    #: digest-checked against the single-shard engine).
    shard_counts: tuple[int, ...] = (4, 8, 16)
    #: Document-update rounds interleaved into each sharded replay.
    shard_update_rounds: int = 3
    #: Connection counts for the over-the-wire loadgen sweep (each is
    #: digest-checked against an in-process replay).
    net_connection_counts: tuple[int, ...] = (1, 4, 16)
    #: Document-update rounds interleaved into each loadgen replay.
    net_update_rounds: int = 2
    #: Shard count for the sharded over-the-wire row (0 disables it).
    net_shard_check: int = 4
    #: Scales for the out-of-core spill-build sweep (PR 9); each scale
    #: builds A(ooc_k) and the M*(ooc_k) hierarchy under a budget of a
    #: quarter of the extent payload.
    ooc_scales: tuple[float, ...] = (0.05, 0.1)
    ooc_k: int = 8
    #: Queries replayed through the segment-backed A(k) per ooc scale.
    ooc_queries: int = 60
    smoke: bool = False

    @classmethod
    def smoke_config(cls) -> "BenchConfig":
        return cls(scale=0.02, datasets=("xmark",), ak_resolutions=(2, 4),
                   replay_queries=40, replay_passes=2, verify_rounds=3,
                   serving_worker_counts=(1, 4), serving_stall_s=0.001,
                   serving_update_rounds=2, shard_counts=(2, 4),
                   shard_update_rounds=2,
                   net_connection_counts=(1, 4, 16),
                   net_update_rounds=2, net_shard_check=4,
                   ooc_scales=(0.05,), ooc_k=4, ooc_queries=30, smoke=True)


def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


# ----------------------------------------------------------------------
# Construction: reference refine_once chain vs PartitionRefiner
# ----------------------------------------------------------------------
def _reference_kbisimulation(graph: DataGraph, k: int) -> list[int]:
    blocks = label_blocks(graph)
    for _ in range(k):
        refined = refine_once(graph, blocks)
        if refined == blocks:
            break
        blocks = refined
    return blocks


def _reference_full_bisimulation(graph: DataGraph) -> tuple[list[int], int]:
    blocks = label_blocks(graph)
    rounds = 0
    limit = graph.num_nodes + 1
    while rounds < limit:
        refined = refine_once(graph, blocks)
        if refined == blocks:
            break
        blocks = refined
        rounds += 1
    return blocks, rounds


def run_construction_bench(graph: DataGraph, dataset: str,
                           resolutions: tuple[int, ...]) -> list[dict]:
    rows: list[dict] = []
    for k in resolutions:
        base_seconds, base_blocks = _timed(
            lambda: _reference_kbisimulation(graph, k))
        fast_seconds, fast_blocks = _timed(
            lambda: kbisimulation_blocks(graph, k))
        if fast_blocks != base_blocks:
            raise AssertionError(
                f"A({k}) fast path diverged from reference on {dataset}")
        rows.append({
            "dataset": dataset, "family": f"A({k})",
            "baseline_seconds": round(base_seconds, 6),
            "fast_seconds": round(fast_seconds, 6),
            "speedup": round(base_seconds / fast_seconds, 3)
            if fast_seconds else float("inf"),
            "index_nodes": max(fast_blocks) + 1,
            "data_nodes": graph.num_nodes,
        })
    base_seconds, (base_blocks, base_rounds) = _timed(
        lambda: _reference_full_bisimulation(graph))
    fast_seconds, (fast_blocks, fast_rounds) = _timed(
        lambda: full_bisimulation_blocks(graph))
    if fast_blocks != base_blocks or fast_rounds != base_rounds:
        raise AssertionError(
            f"1-index fast path diverged from reference on {dataset}")
    rows.append({
        "dataset": dataset, "family": "1-index",
        "baseline_seconds": round(base_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "speedup": round(base_seconds / fast_seconds, 3)
        if fast_seconds else float("inf"),
        "index_nodes": max(fast_blocks) + 1,
        "rounds": fast_rounds,
        "data_nodes": graph.num_nodes,
    })
    return rows


# ----------------------------------------------------------------------
# Replay: cache-off vs cache-on engine over a repeated workload
# ----------------------------------------------------------------------
REPLAY_FAMILIES: tuple[tuple[str, Callable[[DataGraph], object]], ...] = (
    ("M*(k)", MStarIndex),
    ("M(k)", MkIndex),
    ("A(2) static", lambda g: AkIndex(g, 2)),
    ("1-index", OneIndex),
)


def _replay(graph: DataGraph, workload: Workload, factory, cache: bool,
            passes: int, repetitions: int = 3) -> dict:
    """One replay line: best wall-clock of ``repetitions`` fresh runs.

    Replay lines sit in the 5–100ms range, where run-to-run machine
    noise on shared hardware is routinely +/-25% — far larger than the
    regressions the vs-BENCH_pr4 gate is meant to catch.  Each
    repetition builds a fresh engine (cost counters and cache contents
    are deterministic, so the repeats agree on everything but wall
    clock) and the minimum-seconds run is reported, the same best-of-N
    discipline the trace-overhead bench uses.
    """
    best_seconds = None
    best_stats = None
    for _ in range(max(1, repetitions)):
        engine = AdaptiveIndexEngine(graph, index_factory=factory,
                                     cache=cache)

        def run() -> None:
            for _ in range(passes):
                engine.execute_all(workload)

        seconds, _ = _timed(run)
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
            best_stats = engine.stats
    stats = best_stats
    return {
        "seconds": round(best_seconds, 6),
        "queries": stats.queries,
        "query_cost": stats.cost.total,
        "refine_cost": stats.refine_cost.total,
        "total_cost": stats.total_cost,
        "cache_hits": stats.cache_hits,
    }


def run_replay_bench(graph: DataGraph, dataset: str, queries: int,
                     max_length: int, seed: int, passes: int) -> list[dict]:
    workload = Workload.generate(graph, num_queries=queries,
                                 max_length=max_length, seed=seed)
    rows: list[dict] = []
    for name, factory in REPLAY_FAMILIES:
        cold = _replay(graph, workload, factory, cache=False, passes=passes)
        warm = _replay(graph, workload, factory, cache=True, passes=passes)
        rows.append({
            "dataset": dataset, "family": name, "passes": passes,
            "workload_queries": len(workload),
            "cache_off": cold, "cache_on": warm,
            "speedup_wall": round(cold["seconds"] / warm["seconds"], 3)
            if warm["seconds"] else float("inf"),
            "speedup_cost": round(cold["total_cost"] / warm["total_cost"], 3)
            if warm["total_cost"] else float("inf"),
        })
    return rows


# ----------------------------------------------------------------------
# Serving: concurrent replay throughput scaling with worker count
# ----------------------------------------------------------------------
def run_serving_bench(dataset: str, exp: "ExperimentConfig", queries: int,
                      max_length: int, seed: int, passes: int,
                      worker_counts: tuple[int, ...], client_stall_s: float,
                      update_rounds: int) -> list[dict]:
    """Cached-replay throughput through :class:`ServingEngine` at each
    worker count, interleaved with document-update rounds.

    Each worker count gets a **fresh** graph (updates mutate the
    document) built from the same dataset seed, so every run replays the
    identical workload against the identical evolving document — the
    final-answers digest must therefore agree across worker counts, and
    the bench asserts it does before reporting any speedup (a digest
    mismatch would mean the concurrent runs did not serve the same
    document history, i.e. an isolation bug, not a slow run).
    """
    from repro.serving.engine import ServingEngine
    from repro.serving.replay import ReplayConfig, run_replay

    rows: list[dict] = []
    base_qps: float | None = None
    digests: set[str] = set()
    for workers in worker_counts:
        graph = dataset_for(dataset, exp)
        serving = ServingEngine(graph)
        workload = Workload.generate(graph, num_queries=queries,
                                     max_length=max_length, seed=seed)
        replay_config = ReplayConfig(workers=workers, passes=passes,
                                     update_rounds=update_rounds,
                                     update_seed=seed,
                                     client_stall_s=client_stall_s)
        report = run_replay(serving, workload.queries, replay_config)
        digests.add(report.digest)
        qps = report.throughput_qps
        if base_qps is None:
            base_qps = qps
        rows.append({
            "dataset": dataset, "family": type(serving.index).__name__,
            "workers": workers, "passes": passes,
            "client_stall_ms": client_stall_s * 1e3,
            "queries_served": report.queries_served,
            "seconds": round(report.duration_s, 6),
            "throughput_qps": round(qps, 1),
            "speedup_vs_1_worker": round(qps / base_qps, 3)
            if base_qps else 0.0,
            "updates_applied": report.updates_applied,
            "refinements": report.refinements,
            "conflicts": report.conflicts,
            "degraded": report.degraded,
            "timeouts": report.timeouts,
            "cache_hits": report.cache_hits,
            "end_epoch": report.end_epoch,
            "digest": report.digest,
        })
    if len(digests) > 1:
        raise AssertionError(
            f"serving replay digests diverged across worker counts on "
            f"{dataset}: {sorted(digests)} — concurrent runs did not "
            f"serve the same document history")
    return rows


# ----------------------------------------------------------------------
# Network: over-the-wire loadgen sweep, digest-checked vs in-process
# ----------------------------------------------------------------------
def run_net_bench(dataset: str, exp: "ExperimentConfig", queries: int,
                  max_length: int, seed: int, passes: int,
                  connection_counts: tuple[int, ...],
                  update_rounds: int, shard_check: int) -> list[dict]:
    """Over-the-wire replay sweep: latency percentiles + digest check.

    Each connection count gets a fresh single-shard engine behind an
    ephemeral-port :class:`~repro.net.server.IndexServer` and replays
    the identical workload/update schedule through ``repro loadgen``'s
    driver; ``shard_check > 1`` adds one sharded row at the highest
    multi-connection count.  Every row's over-the-wire
    :func:`~repro.net.loadgen.wire_content_digest` must equal the
    answers-only :func:`content_digest` of an in-process replay with
    the same configuration — computed once, since every row serves the
    same document history — or the bench raises: a wire stack that
    changes answers has no throughput worth reporting.  The maximum
    row throughput is the *saturation* estimate the criteria carry
    (this is a loopback, GIL-shared measurement — the useful signal is
    the trend across connection counts, not the absolute number).
    """
    from repro.net.loadgen import LoadgenConfig, run_loadgen
    from repro.net.server import IndexServer
    from repro.serving.engine import ServingEngine
    from repro.serving.replay import ReplayConfig, run_replay
    from repro.sharding import ShardedEngine

    workload_graph = dataset_for(dataset, exp)
    workload = Workload.generate(workload_graph, num_queries=queries,
                                 max_length=max_length, seed=seed)

    # The in-process baseline every over-the-wire row must match.
    baseline_engine = ServingEngine(dataset_for(dataset, exp))
    run_replay(baseline_engine, workload.queries,
               ReplayConfig(workers=4, passes=passes,
                            update_rounds=update_rounds, update_seed=seed))
    baseline_digest = content_digest(baseline_engine, workload.queries)

    plans = [(1, connections) for connections in connection_counts]
    if shard_check > 1:
        multi = [c for c in connection_counts if c > 1]
        plans.append((shard_check, max(multi) if multi else 4))

    rows: list[dict] = []
    for shards, connections in plans:
        if shards > 1:
            engine = ShardedEngine(dataset_for(dataset, exp).freeze(),
                                   num_shards=shards)
            mirror = dataset_for(dataset, exp).freeze()
        else:
            engine = ServingEngine(dataset_for(dataset, exp))
            mirror = dataset_for(dataset, exp)
        config = LoadgenConfig(connections=connections, passes=passes,
                               update_rounds=update_rounds,
                               update_seed=seed)
        with IndexServer(engine, port=0,
                         workers=max(4, connections)) as server:
            host, port = server.address
            report = run_loadgen(host, port, mirror, workload.queries,
                                 config)
        if report.content_digest != baseline_digest:
            raise AssertionError(
                f"over-the-wire replay digest diverged from in-process "
                f"replay on {dataset} ({shards} shards, {connections} "
                f"connections): {report.content_digest} != "
                f"{baseline_digest}")
        rows.append({
            "dataset": dataset, "shards": shards,
            "connections": connections, "passes": passes,
            "queries_ok": report.queries_ok, "shed": report.shed,
            "seconds": round(report.duration_s, 6),
            "throughput_qps": round(report.throughput_qps, 1),
            "p50_ms": round(report.p50_ms, 3),
            "p95_ms": round(report.p95_ms, 3),
            "p99_ms": round(report.p99_ms, 3),
            "degraded": report.degraded,
            "timeouts": report.timeouts,
            "cache_hits": report.cache_hits,
            "updates_applied": report.updates_applied,
            "digest": report.content_digest,
            "digest_matches_inproc": True,
        })
    return rows


# ----------------------------------------------------------------------
# Sharding: fan-out replay across shard counts, digest-checked
# ----------------------------------------------------------------------
def content_digest(engine_like, queries) -> str:
    """SHA-256 over final ground-truth answers, *without* the epoch line.

    :func:`repro.serving.replay.answers_digest` pins the epoch counter
    into its hash, which is right for same-configuration determinism
    checks but wrong for single-vs-sharded comparison: a sharded
    combiner counts compactions and shard-local refinements on
    different clocks than a single engine, while the *answers* must
    still be byte-identical.  This digest is the answers-only view both
    sides must agree on.
    """
    import hashlib

    from repro.queries.pathexpr import as_expression

    unique = sorted({as_expression(q) for q in queries}, key=str)
    hasher = hashlib.sha256()
    with engine_like.pin() as snap:
        for expr in unique:
            answers = ",".join(map(str, sorted(snap.oracle(expr))))
            hasher.update(f"{expr}=[{answers}]\n".encode())
    return hasher.hexdigest()


def run_shard_bench(dataset: str, exp: "ExperimentConfig", queries: int,
                    max_length: int, seed: int, passes: int,
                    shard_counts: tuple[int, ...],
                    update_rounds: int) -> list[dict]:
    """Sharded fan-out replay sweep, digest-checked at every shard count.

    Each shard count gets a fresh graph built from the same dataset
    seed and replays the identical workload with the identical update
    schedule, first through a plain single-shard
    :class:`~repro.serving.engine.ServingEngine` (the ``shards=1``
    baseline row), then through :class:`~repro.sharding.ShardedEngine`
    at each requested count.  After every run the answers-only
    :func:`content_digest` must equal the baseline's — a mismatch means
    the combiner lost or invented answers and the bench raises instead
    of reporting a throughput for a wrong configuration.
    """
    from repro.serving.engine import ServingEngine
    from repro.serving.replay import ReplayConfig, run_replay
    from repro.sharding import ShardedEngine

    rows: list[dict] = []
    baseline_digest: str | None = None
    baseline_qps: float | None = None
    for shards in (1,) + tuple(shard_counts):
        graph = dataset_for(dataset, exp)
        workload = Workload.generate(graph, num_queries=queries,
                                     max_length=max_length, seed=seed)
        if shards == 1:
            construction_s, serving = _timed(
                lambda: ServingEngine(graph.freeze()))
            extra = {}
        else:
            construction_s, serving = _timed(
                lambda: ShardedEngine(graph.freeze(), num_shards=shards))
            extra = {
                "owned_nodes": serving.placement.shard_sizes(),
                "unit_depth": serving.placement.unit_depth,
                "cross_edges": serving.num_cross_edges,
            }
        replay_config = ReplayConfig(workers=4, passes=passes,
                                     update_rounds=update_rounds,
                                     update_seed=seed)
        report = run_replay(serving, workload.queries, replay_config)
        digest = content_digest(serving, workload.queries)
        if baseline_digest is None:
            baseline_digest = digest
        elif digest != baseline_digest:
            raise AssertionError(
                f"sharded replay digest diverged from the single-shard "
                f"engine on {dataset} at {shards} shards: "
                f"{digest} != {baseline_digest}")
        qps = report.throughput_qps
        if baseline_qps is None:
            baseline_qps = qps
        row = {
            "dataset": dataset, "family": type(serving.index).__name__,
            "shards": shards, "passes": passes,
            "construction_seconds": round(construction_s, 6),
            "queries_served": report.queries_served,
            "seconds": round(report.duration_s, 6),
            "throughput_qps": round(qps, 1),
            "throughput_vs_single": round(qps / baseline_qps, 3)
            if baseline_qps else 0.0,
            "updates_applied": report.updates_applied,
            "refinements": report.refinements,
            "degraded": report.degraded,
            "cache_hits": report.cache_hits,
            "digest": digest,
            "digest_matches_single": digest == baseline_digest,
        }
        row.update(extra)
        if shards > 1:
            snap = serving.stats.snapshot()
            row["fallbacks"] = snap["fallbacks"]
            row["pending_segments"] = sum(shard.log.pending()
                                          for shard in serving.shards)
            row["compaction"] = serving.compact()
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Compact data plane: array extents + CSR adjacency vs set reference
# ----------------------------------------------------------------------
def run_compact_bench(graph: DataGraph, dataset: str) -> list[dict]:
    """Benchmark the compact data plane against the set-based reference.

    The operand population is realistic, not synthetic: the A(2)
    partition's blocks (one extent per index node), so sizes and skew
    match what the index families actually hold.  Each line times the
    old set spelling against the compact one, asserts both produce the
    same values, and reports the wall-time ratio.
    """
    from repro.core.extents import Extent, extent_intersect

    blocks = kbisimulation_blocks(graph, 2)
    members: dict[int, list[int]] = {}
    for oid, block in enumerate(blocks):
        members.setdefault(block, []).append(oid)
    as_sets = [set(values) for values in members.values()]
    as_extents = [Extent.from_iterable(values)
                  for values in members.values()]
    total_members = sum(len(s) for s in as_sets)
    repeats = max(5, min(400, 2_000_000 // max(total_members, 1)))
    rows: list[dict] = []

    def line(name: str, baseline: Callable[[], object],
             fast: Callable[[], object], **extra) -> None:
        base_seconds, base_result = _timed(baseline)
        fast_seconds, fast_result = _timed(fast)
        if base_result != fast_result:
            raise AssertionError(
                f"compact '{name}' diverged from set reference on "
                f"{dataset}")
        rows.append({
            "dataset": dataset, "line": name, "repeats": repeats,
            "extents": len(as_sets), "members": total_members,
            "baseline_seconds": round(base_seconds, 6),
            "fast_seconds": round(fast_seconds, 6),
            "speedup": round(base_seconds / fast_seconds, 3)
            if fast_seconds else float("inf"), **extra,
        })

    # 1. Snapshot pinning: copying every extent for a snapshot.  The
    # set path rehashes every member; the immutable array is shared.
    def copy_sets() -> int:
        count = 0
        for _ in range(repeats):
            pinned = [set(value) for value in as_sets]
            count += len(pinned)
        return count

    def copy_extents() -> int:
        count = 0
        for _ in range(repeats):
            pinned = [extent.copy() for extent in as_extents]
            count += len(pinned)
        return count

    line("snapshot_extent_copy", copy_sets, copy_extents)

    # 2. Canonical digests: every replay/cache token needs extents in
    # canonical order.  Sets must sort per call; arrays already are.
    def digest_sets() -> list[tuple]:
        out: list[tuple] = []
        for _ in range(repeats):
            out = [tuple(sorted(value)) for value in as_sets]
        return out

    def digest_extents() -> list[tuple]:
        out: list[tuple] = []
        for _ in range(repeats):
            out = [tuple(extent) for extent in as_extents]
        return out

    line("canonical_digest", digest_sets, digest_extents)

    # 3. Merge intersect: each block against a dense window spanning it
    # (guaranteed overlap; partition blocks themselves are disjoint).
    windows = [range(min(values), max(values) + 1)
               for values in members.values()]
    window_sets = [set(window) for window in windows]
    window_extents = [Extent.from_sorted(list(window))
                      for window in windows]

    def intersect_sets() -> list[list[int]]:
        out: list[list[int]] = []
        for _ in range(repeats):
            out = [sorted(value & window)
                   for value, window in zip(as_sets, window_sets)]
        return out

    def intersect_extents() -> list[list[int]]:
        out: list[list[int]] = []
        for _ in range(repeats):
            out = [list(extent_intersect(extent, window))
                   for extent, window in zip(as_extents, window_extents)]
        return out

    line("merge_intersect", intersect_sets, intersect_extents)

    # 4. Construction on a frozen (CSR) vs mutable (list-of-lists)
    # graph: partition refinement is adjacency-scan bound.  Freeze/thaw
    # happen outside the timed region (steady-state comparison, best of
    # three): the point is what refinement costs on each backend, not
    # the one-off CSR build.
    was_frozen = graph.frozen
    graph.thaw()
    mutable_seconds, mutable_blocks = min(
        (_timed(lambda: kbisimulation_blocks(graph, 4)) for _ in range(3)),
        key=lambda pair: pair[0])
    graph.freeze()
    frozen_seconds, frozen_blocks = min(
        (_timed(lambda: kbisimulation_blocks(graph, 4)) for _ in range(3)),
        key=lambda pair: pair[0])
    if frozen_blocks != mutable_blocks:
        raise AssertionError(
            f"compact 'construction_frozen_graph' diverged from the "
            f"mutable-graph reference on {dataset}")
    rows.append({
        "dataset": dataset, "line": "construction_frozen_graph",
        "repeats": 3, "extents": len(as_sets), "members": total_members,
        "baseline_seconds": round(mutable_seconds, 6),
        "fast_seconds": round(frozen_seconds, 6),
        "speedup": round(mutable_seconds / frozen_seconds, 3)
        if frozen_seconds else float("inf"),
    })
    if not was_frozen:
        graph.thaw()

    # 5. Memory: bytes per extent member, set object vs array payload
    # (shallow sizes; the set's int objects are shared with the graph
    # either way, so the delta below *understates* the set's true cost).
    set_bytes = sum(sys.getsizeof(value) for value in as_sets)
    extent_bytes = 0
    for extent in as_extents:
        data = extent._data
        extent_bytes += getattr(data, "nbytes", None) or \
            (data.itemsize * len(data))
    rows.append({
        "dataset": dataset, "line": "memory_bytes_per_member",
        "extents": len(as_sets), "members": total_members,
        "set_bytes": set_bytes, "array_bytes": extent_bytes,
        "set_bytes_per_member": round(set_bytes / max(total_members, 1), 2),
        "array_bytes_per_member": round(
            extent_bytes / max(total_members, 1), 2),
        "ratio": round(set_bytes / extent_bytes, 3)
        if extent_bytes else float("inf"),
    })
    return rows


def _load_samebox_baseline(path: str) -> dict:
    """Lockstep PR 4 vs current pairs measured on the *current* machine.

    ``benchmarks/bench_pr4_samebox.py`` writes ``baseline`` (PR 4 era
    code) and ``current_at_measurement`` (this tree), timed rep-by-rep
    in lockstep so both sides see the same host clock state.  Returns
    ``dataset|family -> (pr4_seconds, current_seconds)`` for keys
    present in both maps; empty when the file is absent.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    baseline = payload.get("baseline", {})
    current = payload.get("current_at_measurement", {})
    return {key: (baseline[key], current[key])
            for key in baseline if key in current}


def _vs_pr4_deltas(report: dict, previous_path: str,
                   samebox_path: str) -> list[dict]:
    """Wall-time deltas of construction/replay lines vs a prior artifact.

    Matches lines by ``(group, dataset, family)``; silently returns
    nothing when the previous artifact is absent or unreadable (the
    bench must not fail because history is missing).  Cross-session
    wall-clock comparison is host-dominated (the identical committed
    code has measured 0.37x-1.6x of its own artifact numbers across VM
    sessions), so when a same-machine PR 4 baseline exists
    (``benchmarks/bench_pr4_samebox.py``) each replay row additionally
    carries ``pr4_samebox_seconds``/``speedup_vs_pr4_samebox`` — the
    like-for-like ratio the criteria prefer.
    """
    try:
        with open(previous_path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return []
    samebox = _load_samebox_baseline(samebox_path)
    deltas: list[dict] = []
    for group, seconds_key in (("construction", "fast_seconds"),
                               ("replay", None)):
        old_rows = {(row["dataset"], row["family"]): row
                    for row in previous.get(group, [])}
        for row in report.get(group, []):
            old = old_rows.get((row["dataset"], row["family"]))
            if old is None:
                continue
            if seconds_key is not None:
                now, then = row[seconds_key], old[seconds_key]
            else:
                now = row["cache_on"]["seconds"]
                then = old["cache_on"]["seconds"]
            delta = {
                "group": group, "dataset": row["dataset"],
                "family": row["family"],
                "pr4_seconds": round(then, 6),
                "pr7_seconds": round(now, 6),
                "speedup_vs_pr4": round(then / now, 3)
                if now else float("inf"),
            }
            if group == "replay":
                pair = samebox.get(f"{row['dataset']}|{row['family']}")
                if pair is not None and pair[1]:
                    # Ratio of the lockstep pair, NOT pr4-box over this
                    # run's own wall time: the host clock drifts ~2x
                    # across minutes, so only samples taken back-to-back
                    # are comparable.
                    box_pr4, box_now = pair
                    delta["pr4_samebox_seconds"] = round(box_pr4, 6)
                    delta["samebox_current_seconds"] = round(box_now, 6)
                    delta["speedup_vs_pr4_samebox"] = round(
                        box_pr4 / box_now, 3)
            deltas.append(delta)
    return deltas


# ----------------------------------------------------------------------
# Trace overhead: the disabled-tracer fast path must be near-free
# ----------------------------------------------------------------------
def run_trace_overhead_bench(graph: DataGraph, dataset: str, queries: int,
                             max_length: int, seed: int,
                             passes: int) -> dict:
    """Measure what disabled tracing costs on the cached replay workload.

    Instrumentation cannot be compiled out, so the pre-instrumentation
    baseline is unmeasurable at runtime; instead the bench bounds the
    overhead from its parts, all measured here:

    * replay the PR 2 cached workload with the tracer **disabled**
      (best of three runs) — the production configuration;
    * replay once with the tracer **enabled** and count recorded spans,
      which equals the number of instrumentation call sites executed;
    * micro-time the disabled ``tracer.span()`` + null-span context
      manager (the most expensive thing a disabled call site does —
      guarded call sites pay only an attribute check, which is less).

    ``modeled_overhead_fraction`` = spans-per-query x disabled-call cost
    / per-query replay time, an upper bound on the disabled tracer's
    share of replay time.  The acceptance budget is 5%.
    """
    from repro.obs import trace as trace_mod

    workload = Workload.generate(graph, num_queries=queries,
                                 max_length=max_length, seed=seed)
    tracer = trace_mod.TRACER

    def replay() -> int:
        engine = AdaptiveIndexEngine(graph, index_factory=MStarIndex,
                                     cache=True)
        for _ in range(passes):
            engine.execute_all(workload)
        return engine.stats.queries

    tracer.disable()
    tracer.clear()
    disabled_runs: list[float] = []
    num_queries = 0
    for _ in range(3):
        seconds, num_queries = _timed(replay)
        disabled_runs.append(seconds)
    disabled_seconds = min(disabled_runs)

    tracer.enable(clear=True)
    try:
        enabled_seconds, _ = _timed(replay)
        spans_recorded = tracer.recorded
    finally:
        tracer.disable()
        tracer.clear()

    calls = 200_000
    span = tracer.span

    def micro() -> None:
        for _ in range(calls):
            with span("bench.noop"):
                pass

    micro_seconds, _ = _timed(micro)

    ns_per_disabled_span = micro_seconds / calls * 1e9
    spans_per_query = spans_recorded / num_queries
    per_query_us = disabled_seconds / num_queries * 1e6
    modeled_fraction = (spans_per_query * ns_per_disabled_span / 1000.0
                        / per_query_us) if per_query_us else 0.0
    return {
        "dataset": dataset, "family": "M*(k)", "passes": passes,
        "workload_queries": len(workload), "queries_replayed": num_queries,
        "disabled_seconds": round(disabled_seconds, 6),
        "disabled_runs": [round(value, 6) for value in disabled_runs],
        "enabled_seconds": round(enabled_seconds, 6),
        "spans_recorded": spans_recorded,
        "spans_per_query": round(spans_per_query, 3),
        "ns_per_disabled_span": round(ns_per_disabled_span, 1),
        "per_query_us_disabled": round(per_query_us, 3),
        "modeled_overhead_fraction": round(modeled_fraction, 6),
        "budget_fraction": 0.05,
        "within_budget": modeled_fraction <= 0.05,
    }


# ----------------------------------------------------------------------
# The full run
# ----------------------------------------------------------------------
def run_bench(config: BenchConfig | None = None,
              progress: Callable[[str], None] | None = None) -> dict:
    """Run every bench group plus the correctness gate; return the report.

    The report's ``verify.ok`` reflects a differential-oracle campaign
    run with the engines' default configuration (result cache enabled)
    which also replays every stream cache-off (see
    :func:`repro.verify.oracle.check_cache_equivalence`) — a benchmark
    of a wrong configuration is worthless, so callers should treat
    ``ok: false`` as a failure regardless of the speedups.
    """
    config = config or BenchConfig()
    say = progress if progress is not None else (lambda line: None)
    exp = ExperimentConfig(scale=config.scale, num_queries=config.replay_queries,
                           seed=config.seed)
    report: dict = {
        "name": "BENCH_pr9",
        "config": asdict(config),
        "construction": [],
        "replay": [],
        "serving": [],
        "sharding": [],
        "network": [],
        "trace_overhead": [],
        "compact": [],
        "ooc": [],
    }
    for dataset in config.datasets:
        graph = dataset_for(dataset, exp)
        say(f"bench: {dataset}: {graph.num_nodes} nodes, "
            f"{graph.num_edges} edges")
        report["construction"].extend(
            run_construction_bench(graph, dataset, config.ak_resolutions))
        say(f"bench: {dataset}: construction done")
        report["replay"].extend(
            run_replay_bench(graph, dataset, config.replay_queries,
                             config.max_query_length, config.seed,
                             config.replay_passes))
        say(f"bench: {dataset}: replay done")
        report["serving"].extend(
            run_serving_bench(dataset, exp, config.replay_queries,
                              config.max_query_length, config.seed,
                              config.replay_passes,
                              config.serving_worker_counts,
                              config.serving_stall_s,
                              config.serving_update_rounds))
        say(f"bench: {dataset}: serving done")
        report["sharding"].extend(
            run_shard_bench(dataset, exp, config.replay_queries,
                            config.max_query_length, config.seed,
                            config.replay_passes, config.shard_counts,
                            config.shard_update_rounds))
        say(f"bench: {dataset}: shard sweep done")
        report["network"].extend(
            run_net_bench(dataset, exp, config.replay_queries,
                          config.max_query_length, config.seed,
                          config.replay_passes,
                          config.net_connection_counts,
                          config.net_update_rounds,
                          config.net_shard_check))
        say(f"bench: {dataset}: network sweep done")
        report["trace_overhead"].append(
            run_trace_overhead_bench(graph, dataset, config.replay_queries,
                                     config.max_query_length, config.seed,
                                     config.replay_passes))
        say(f"bench: {dataset}: trace overhead done")
        report["compact"].extend(run_compact_bench(graph, dataset))
        say(f"bench: {dataset}: compact data plane done")

    # The out-of-core sweep is an XMark scale sweep (the paper's scaling
    # dataset), independent of the per-dataset groups above.
    report["ooc"].extend(
        run_ooc_bench("xmark", exp, config.ooc_scales, config.ooc_k,
                      config.ooc_queries, config.max_query_length,
                      config.seed))
    say("bench: xmark: out-of-core spill builds done")

    from repro.verify.runner import run_verification

    verification = run_verification(seed=config.seed,
                                    rounds=config.verify_rounds,
                                    queries_per_round=12,
                                    engine_queries=24)
    report["verify"] = {
        "ok": verification.ok,
        "rounds": verification.rounds,
        "engine_steps": verification.engine_steps,
        "discrepancies": [str(d) for d in verification.discrepancies],
    }
    say(f"bench: verify {'OK' if verification.ok else 'FAILED'}")

    def _deep_ak(family: str) -> bool:
        # The acceptance criterion names A(k) construction with k >= 4.
        return (family.startswith("A(") and family.endswith(")")
                and int(family[2:-1]) >= 4)

    construction_best = max(
        (row["speedup"] for row in report["construction"]
         if _deep_ak(row["family"])),
        default=0.0)
    replay_best = max((row["speedup_wall"] for row in report["replay"]),
                      default=0.0)
    overhead_worst = max((row["modeled_overhead_fraction"]
                          for row in report["trace_overhead"]), default=0.0)
    trace_overhead_ok = all(row["within_budget"]
                            for row in report["trace_overhead"])
    # The PR 4 criterion names 4 workers; fall back to the best measured
    # multi-worker speedup when a custom sweep omits that count.
    serving_at_4 = [row["speedup_vs_1_worker"] for row in report["serving"]
                    if row["workers"] == 4]
    serving_multi = [row["speedup_vs_1_worker"] for row in report["serving"]
                     if row["workers"] > 1]
    serving_best = min(serving_at_4) if serving_at_4 else (
        max(serving_multi, default=0.0))
    serving_ok = (not report["serving"]) or serving_best >= 1.5
    compact_best = max((row["speedup"] for row in report["compact"]
                        if "speedup" in row), default=0.0)
    compact_ok = (not report["compact"]) or compact_best >= 1.5
    shard_rows = [row for row in report["sharding"] if row["shards"] > 1]
    shard_sweep_ok = bool(shard_rows) and all(
        row["digest_matches_single"] for row in shard_rows)
    net_rows = report["network"]
    net_sweep_ok = bool(net_rows) and all(
        row["digest_matches_inproc"] for row in net_rows)
    net_saturation_qps = max((row["throughput_qps"] for row in net_rows),
                             default=0.0)
    report["vs_pr4"] = _vs_pr4_deltas(
        report,
        os.environ.get("REPRO_BENCH_PREVIOUS", "BENCH_pr4.json"),
        os.environ.get("REPRO_BENCH_PR4_SAMEBOX",
                       "BENCH_pr4_samebox.json"))
    replay_rows = [row for row in report["vs_pr4"]
                   if row["group"] == "replay"]
    # Prefer the same-machine baseline: artifact wall clocks only
    # compare like-for-like on the host that recorded them.
    samebox_used = all("speedup_vs_pr4_samebox" in row
                       for row in replay_rows) and bool(replay_rows)
    replay_vs_pr4 = [row["speedup_vs_pr4_samebox"] if samebox_used
                     else row["speedup_vs_pr4"] for row in replay_rows]
    replay_vs_pr4_min = min(replay_vs_pr4, default=None)
    # Vacuously ok when no prior artifact is readable — the bench must
    # not fail because history is missing.
    replay_vs_pr4_ok = replay_vs_pr4_min is None or replay_vs_pr4_min >= 1.0
    ooc = ooc_criteria(report["ooc"])
    report["criteria"] = {
        "construction_speedup_k4_plus": construction_best,
        "replay_speedup_wall": replay_best,
        "target": 2.0,
        "disabled_tracer_overhead_fraction": overhead_worst,
        "disabled_tracer_budget": 0.05,
        "trace_overhead_ok": trace_overhead_ok,
        "serving_speedup_4_workers": round(serving_best, 3),
        "serving_target": 1.5,
        "serving_ok": serving_ok,
        "compact_speedup_best": round(compact_best, 3),
        "compact_target": 1.5,
        "compact_ok": compact_ok,
        "shard_counts": sorted({row["shards"] for row in shard_rows}),
        "shard_sweep_ok": shard_sweep_ok,
        "net_connection_counts": sorted({row["connections"]
                                         for row in net_rows}),
        "net_shard_counts": sorted({row["shards"] for row in net_rows}),
        "net_saturation_qps": net_saturation_qps,
        "net_sweep_ok": net_sweep_ok,
        "replay_speedup_vs_pr4_min": replay_vs_pr4_min,
        "replay_vs_pr4_target": 1.0,
        "replay_baseline_source": ("samebox" if samebox_used
                                   else "artifact"),
        "replay_vs_pr4_ok": replay_vs_pr4_ok,
        **ooc,
        "passed": bool(verification.ok and trace_overhead_ok and serving_ok
                       and compact_ok and shard_sweep_ok and net_sweep_ok
                       and replay_vs_pr4_ok and ooc["ooc_ok"]
                       and (construction_best >= 2.0 or replay_best >= 2.0)),
    }
    return report


def write_bench(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
