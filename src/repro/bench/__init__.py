"""Benchmark trajectory runner behind ``repro bench``.

Measures the two hot paths this repository optimises — partition
refinement during index construction and repeated-FUP workload replay
through the adaptive engine — against their reference implementations,
and persists the numbers as a JSON artifact (``BENCH_pr2.json``) so the
speedups travel with the code instead of living in a PR description.
"""

from repro.bench.runner import (
    BenchConfig,
    run_bench,
    run_compact_bench,
    write_bench,
)

__all__ = ["BenchConfig", "run_bench", "run_compact_bench", "write_bench"]
