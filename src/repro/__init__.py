"""repro — reproduction of "Multiresolution Indexing of XML for Frequent
Queries" (Hao He and Jun Yang, ICDE 2004).

The package implements the paper's M(k)- and M*(k)-indexes together with
every substrate they rest on: the labeled-directed data-graph model, XML
parsing with ID/IDREF resolution, simple path expressions and their
direct evaluation/validation, k-bisimulation partition refinement, the
1-index / A(k)-index / D(k)-index baselines, the paper's cost model,
synthetic XMark- and NASA-like datasets, the workload generator, and a
harness regenerating every figure of the paper's evaluation section.

Quickstart::

    from repro import MStarIndex, Workload, generate_xmark

    graph = generate_xmark(scale=0.02, seed=7)
    index = MStarIndex(graph)
    for query in Workload.generate(graph, num_queries=50, max_length=9):
        result = index.query(query)     # safe; validates when imprecise
        index.refine(query, result)     # support this FUP from now on
"""

from repro.core.engine import AdaptiveIndexEngine, EngineStats
from repro.core.fup import FupExtractor
from repro.cost.counters import CostCounter
from repro.cost.metrics import IndexSize, index_size
from repro.datasets import generate_dblp, generate_nasa, generate_xmark
from repro.graph.builder import GraphBuilder, graph_from_edges
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.graph.xml_io import graph_to_xml, parse_xml, parse_xml_file
from repro.indexes.aindex import AkIndex
from repro.indexes.apex import ApexIndex
from repro.indexes.base import IndexGraph, IndexNode, QueryResult
from repro.indexes.dataguide import DataGuide
from repro.indexes.dindex import DkIndex
from repro.indexes.fbindex import FBIndex
from repro.indexes.mindex import MkIndex
from repro.indexes.mstarindex import MStarIndex
from repro.indexes.oneindex import OneIndex
from repro.indexes.udindex import UDIndex
from repro.queries.branching import BranchingPathExpression
from repro.queries.pathexpr import PathExpression
from repro.queries.workload import Workload, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "AdaptiveIndexEngine",
    "AkIndex",
    "BranchingPathExpression",
    "ApexIndex",
    "DataGuide",
    "CostCounter",
    "EngineStats",
    "FupExtractor",
    "DataGraph",
    "DkIndex",
    "FBIndex",
    "EdgeKind",
    "GraphBuilder",
    "IndexGraph",
    "IndexNode",
    "IndexSize",
    "MStarIndex",
    "MkIndex",
    "OneIndex",
    "PathExpression",
    "UDIndex",
    "QueryResult",
    "Workload",
    "WorkloadSpec",
    "generate_dblp",
    "generate_nasa",
    "generate_xmark",
    "graph_from_edges",
    "graph_to_xml",
    "index_size",
    "parse_xml",
    "parse_xml_file",
    "__version__",
]
