"""A small DTD-like schema model for random document generation.

The paper's datasets come from the XMark generator and the IBM XML
generator applied to the NASA DTD.  Neither tool is available offline, so
:mod:`repro.datasets.generator` plays their role: it expands a
:class:`Schema` — element declarations with occurrence ranges,
probabilities, and ID/IDREF reference declarations — into a
:class:`~repro.graph.datagraph.DataGraph`.  What matters for the
experiments is the *shape* the schema induces (depth, breadth,
irregularity, element-name reuse, reference density), which the XMark and
NASA schemas in this package mirror.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Child:
    """One child slot of an element declaration.

    With probability ``probability`` the slot is instantiated, producing
    between ``min_occurs`` and ``max_occurs`` children (uniformly chosen).
    """

    name: str
    min_occurs: int = 1
    max_occurs: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.min_occurs <= self.max_occurs:
            raise ValueError(f"bad occurrence range on child {self.name!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"bad probability on child {self.name!r}")


@dataclass(frozen=True)
class Reference:
    """An IDREF attribute: instances point at instances of ``target``.

    With probability ``probability`` an element of the declaring type
    carries 1..``max_targets`` reference edges to randomly chosen
    ``target`` elements (if any exist in the document).
    """

    target: str
    probability: float = 1.0
    max_targets: int = 1

    def __post_init__(self) -> None:
        if self.max_targets < 1:
            raise ValueError("max_targets must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"bad probability on reference to {self.target!r}")


@dataclass(frozen=True)
class Element:
    """Declaration of one element type."""

    name: str
    children: tuple[Child, ...] = ()
    references: tuple[Reference, ...] = ()


@dataclass(frozen=True)
class Schema:
    """A set of element declarations with a designated document element."""

    root: str
    elements: dict[str, Element] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.root not in self.elements:
            raise ValueError(f"root element {self.root!r} not declared")
        for element in self.elements.values():
            for child in element.children:
                if child.name not in self.elements:
                    raise ValueError(
                        f"{element.name!r} declares undeclared child "
                        f"{child.name!r}")

    def element(self, name: str) -> Element:
        return self.elements[name]

    def alphabet(self) -> set[str]:
        """All element names (the label alphabet the document will use)."""
        return set(self.elements)

    def label_reuse(self) -> dict[str, int]:
        """How many distinct parent contexts each element name appears in.

        The paper attributes the NASA dataset's susceptibility to
        irrelevant-index-node over-refinement to heavy reuse (``name``
        appears in seven contexts); this helper lets tests assert our
        schemas mirror that.
        """
        contexts: dict[str, set[str]] = {}
        for element in self.elements.values():
            for child in element.children:
                contexts.setdefault(child.name, set()).add(element.name)
        return {name: len(parents) for name, parents in contexts.items()}


def schema_from_dict(root: str,
                     declarations: dict[str, list],
                     references: dict[str, list[Reference]] | None = None
                     ) -> Schema:
    """Compact schema constructor.

    ``declarations`` maps an element name to its child slots, each either
    a plain name (exactly one occurrence) or a :class:`Child`.  Elements
    appearing only as children are auto-declared as leaves.
    """
    references = references or {}
    names: set[str] = set(declarations) | set(references)
    for slots in declarations.values():
        for slot in slots:
            names.add(slot.name if isinstance(slot, Child) else slot)
    elements: dict[str, Element] = {}
    for name in sorted(names):
        slots = declarations.get(name, [])
        children = tuple(slot if isinstance(slot, Child) else Child(slot)
                         for slot in slots)
        elements[name] = Element(name=name, children=children,
                                 references=tuple(references.get(name, ())))
    return Schema(root=root, elements=elements)
