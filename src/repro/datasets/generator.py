"""Random document generation from a :class:`~repro.datasets.dtd.Schema`.

Plays the role of the XMark / IBM XML generators: breadth-first expansion
of the schema from the document element, bounded by a node budget, with
ID/IDREF reference edges wired up afterwards.  Generation is fully
deterministic given ``(schema, max_nodes, seed)``.
"""

from __future__ import annotations

import random

from repro.datasets.dtd import Schema
from repro.graph.datagraph import DataGraph, EdgeKind


class DocumentGenerator:
    """Expands a schema into a data graph under a node budget."""

    def __init__(self, schema: Schema, max_nodes: int, seed: int = 0,
                 root_label: str = "root") -> None:
        if max_nodes < 2:
            raise ValueError("max_nodes must allow at least root + document element")
        self.schema = schema
        self.max_nodes = max_nodes
        self.seed = seed
        self.root_label = root_label

    def generate(self) -> DataGraph:
        """Generate one document as a :class:`DataGraph`.

        A synthetic node labeled ``root_label`` tops the document element
        (matching the paper's Figure 1).  Expansion is breadth-first so
        that hitting the budget truncates the deepest fringe rather than
        whole subtrees.  Reference edges are added in a second pass, each
        pointing at a uniformly random instance of the declared target
        element (skipped when no instance exists or the pick would
        duplicate an edge).
        """
        rng = random.Random(self.seed)
        graph = DataGraph()
        root_oid = graph.add_node(self.root_label)
        doc_oid = graph.add_node(self.schema.root)
        graph.add_edge(root_oid, doc_oid)
        instances: dict[str, list[int]] = {self.schema.root: [doc_oid]}

        queue: list[int] = [doc_oid]
        head = 0
        while head < len(queue) and graph.num_nodes < self.max_nodes:
            oid = queue[head]
            head += 1
            declaration = self.schema.element(graph.label(oid))
            for child_spec in declaration.children:
                if rng.random() >= child_spec.probability:
                    continue
                count = rng.randint(child_spec.min_occurs,
                                    child_spec.max_occurs)
                for _ in range(count):
                    if graph.num_nodes >= self.max_nodes:
                        break
                    child_oid = graph.add_node(child_spec.name)
                    graph.add_edge(oid, child_oid)
                    instances.setdefault(child_spec.name, []).append(child_oid)
                    queue.append(child_oid)

        self._add_references(graph, instances, rng)
        graph.root = root_oid
        return graph

    def _add_references(self, graph: DataGraph,
                        instances: dict[str, list[int]],
                        rng: random.Random) -> None:
        for label in sorted(instances):
            declaration = self.schema.element(label)
            if not declaration.references:
                continue
            for oid in instances[label]:
                for reference in declaration.references:
                    if rng.random() >= reference.probability:
                        continue
                    pool = instances.get(reference.target)
                    if not pool:
                        continue
                    count = rng.randint(1, reference.max_targets)
                    for _ in range(count):
                        target = pool[rng.randrange(len(pool))]
                        if target == oid or graph.has_edge(oid, target):
                            continue
                        graph.add_edge(oid, target, kind=EdgeKind.REFERENCE)


def generate_document(schema: Schema, max_nodes: int,
                      seed: int = 0) -> DataGraph:
    """One-shot convenience wrapper around :class:`DocumentGenerator`."""
    return DocumentGenerator(schema, max_nodes, seed=seed).generate()
