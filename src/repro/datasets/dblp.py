"""DBLP-like bibliography dataset (library extension, not in the paper).

A third schema family exercising a different structural regime than
XMark (regular, shallow) and NASA (irregular, deep): a *citation graph*
— flat records whose reference edges (citations, cross-references to
proceedings) dominate the structure.  Useful for examples and for
stressing the indexes on reference-heavy, shallow data.
"""

from __future__ import annotations

from repro.datasets.dtd import Child, Reference, Schema, schema_from_dict
from repro.datasets.generator import generate_document
from repro.graph.datagraph import DataGraph

#: Node budget at scale 1.0 (chosen to match the paper-dataset ballpark).
BASE_NODES = 100_000


def dblp_schema(multiplier: int = 1) -> Schema:
    """The bibliography schema.

    ``multiplier`` scales the number of publication records; record
    shapes stay fixed.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    m = multiplier
    declarations = {
        "dblp": [Child("article", 4 * m, 8 * m),
                 Child("inproceedings", 5 * m, 10 * m),
                 Child("proceedings", 1 * m, 3 * m)],
        "article": ["title", "year", Child("author", 1, 4),
                    Child("journal", probability=0.9),
                    Child("volume", probability=0.6),
                    Child("pages", probability=0.7),
                    Child("ee", probability=0.5),
                    Child("cite", 0, 5)],
        "inproceedings": ["title", "year", Child("author", 1, 4),
                          "booktitle",
                          Child("pages", probability=0.7),
                          Child("crossref", probability=0.8),
                          Child("ee", probability=0.4),
                          Child("cite", 0, 4)],
        "proceedings": ["title", "year", Child("editor", 1, 3),
                        "publisher", Child("isbn", probability=0.7)],
        "author": ["name"],
        "editor": ["name"],
    }
    references = {
        "cite": [Reference("article", probability=0.6),
                 Reference("inproceedings", probability=0.5)],
        "crossref": [Reference("proceedings")],
    }
    return schema_from_dict("dblp", declarations, references)


def generate_dblp(scale: float = 0.05, seed: int = 13) -> DataGraph:
    """Generate a DBLP-like bibliography document."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    max_nodes = max(200, int(BASE_NODES * scale))
    base = generate_document(dblp_schema(), max_nodes, seed=seed)
    if base.num_nodes >= max_nodes:
        return base
    multiplier = max(1, round(max_nodes / base.num_nodes))
    return generate_document(dblp_schema(multiplier), max_nodes, seed=seed)
