"""XMark-like auction-site dataset.

Mirrors the structural properties of the XML Benchmark Project document
the paper uses: a shallow, *regular* schema about an auction web site
(regions/items, people, open and closed auctions) with moderate reference
density (bidders/sellers/itemrefs) and little element-name reuse — the
paper notes XMark "reuses elements much less often" than NASA, and that
its simple DTD makes workload queries collide, exposing the
overqualified-parents problem of D(k)-promote and M(k) (Figures 18-19).
"""

from __future__ import annotations

from repro.datasets.dtd import Child, Reference, Schema, schema_from_dict
from repro.datasets.generator import generate_document
from repro.graph.datagraph import DataGraph

#: Node budget at scale 1.0.  The paper's XMark document has ~120k nodes;
#: the default keeps the full experiment sweep tractable in CPython while
#: preserving every structural effect (see DESIGN.md).
BASE_NODES = 120_000


def xmark_schema(multiplier: int = 1) -> Schema:
    """The auction-site schema.

    ``multiplier`` scales the collection sizes (items per region, people,
    auctions, categories) the way the real XMark generator's scale factor
    does — the schema's nesting depth stays fixed while its breadth grows.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    m = multiplier
    declarations = {
        "site": ["regions", "people", "open_auctions", "closed_auctions",
                 "categories", "catgraph"],
        "regions": ["africa", "asia", "australia", "europe", "namerica",
                    "samerica"],
        "africa": [Child("item", 1 * m, 4 * m)],
        "asia": [Child("item", 2 * m, 6 * m)],
        "australia": [Child("item", 1 * m, 4 * m)],
        "europe": [Child("item", 3 * m, 8 * m)],
        "namerica": [Child("item", 3 * m, 8 * m)],
        "samerica": [Child("item", 1 * m, 4 * m)],
        "item": ["location", "quantity", "name", "payment",
                 Child("description", probability=0.9),
                 Child("shipping", probability=0.6),
                 Child("mailbox", probability=0.7),
                 Child("incategory", 1, 2, probability=0.8)],
        "description": [Child("text", probability=0.7),
                        Child("parlist", probability=0.3)],
        "parlist": [Child("listitem", 1, 3)],
        "listitem": ["text"],
        "mailbox": [Child("mail", 0, 3)],
        "mail": ["from", "to", "date", "text"],
        "people": [Child("person", 6 * m, 12 * m)],
        "person": ["name", "emailaddress",
                   Child("phone", probability=0.5),
                   Child("address", probability=0.6),
                   Child("homepage", probability=0.3),
                   Child("creditcard", probability=0.4),
                   Child("profile", probability=0.6),
                   Child("watches", probability=0.4)],
        "address": ["street", "city", "country", "zipcode",
                    Child("province", probability=0.3)],
        "profile": [Child("interest", 0, 3), Child("education", probability=0.4),
                    Child("gender", probability=0.5), "business",
                    Child("age", probability=0.6)],
        "watches": [Child("watch", 1, 3)],
        "open_auctions": [Child("open_auction", 4 * m, 10 * m)],
        "open_auction": ["initial", Child("reserve", probability=0.4),
                         Child("bidder", 0, 4), "current",
                         Child("privacy", probability=0.3), "itemref",
                         "seller", "annotation", "quantity", "type",
                         "interval"],
        "bidder": ["date", "time", "increase", "personref"],
        "interval": ["start", "end"],
        "annotation": [Child("author", probability=0.8),
                       Child("description", probability=0.7), "happiness"],
        "closed_auctions": [Child("closed_auction", 3 * m, 8 * m)],
        "closed_auction": ["seller", "buyer", "itemref", "price", "date",
                           "quantity", "type",
                           Child("annotation", probability=0.7)],
        "categories": [Child("category", 3 * m, 6 * m)],
        "category": ["name", Child("description", probability=0.8)],
        "catgraph": [Child("edge", 2 * m, 6 * m)],
    }
    references = {
        "itemref": [Reference("item")],
        "personref": [Reference("person")],
        "seller": [Reference("person")],
        "buyer": [Reference("person")],
        "author": [Reference("person", probability=0.8)],
        "watch": [Reference("open_auction", probability=0.9)],
        "incategory": [Reference("category")],
        "edge": [Reference("category", max_targets=2)],
    }
    return schema_from_dict("site", declarations, references)


def generate_xmark(scale: float = 0.05, seed: int = 7) -> DataGraph:
    """Generate an XMark-like document.

    ``scale=1.0`` approximates the paper's ~120k-node document; the
    default keeps full experiment sweeps fast (all metrics are counts,
    so shapes are scale-stable — see DESIGN.md).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    max_nodes = max(200, int(BASE_NODES * scale))
    # Two-pass sizing: measure the multiplier-1 document, then scale the
    # collection counts so the target size is reached by breadth (as the
    # real XMark scale factor does) rather than by budget truncation.
    base = generate_document(xmark_schema(), max_nodes, seed=seed)
    if base.num_nodes >= max_nodes:
        return base
    multiplier = max(1, round(max_nodes / base.num_nodes))
    return generate_document(xmark_schema(multiplier), max_nodes, seed=seed)
