"""NASA-like astronomical-dataset document.

Mirrors the structural properties the paper relies on for its NASA
experiments: a *deeper, broader, more irregular* schema than XMark, with
more ID/IDREF references (the D(k) paper removed half of them; this paper
keeps all) and heavy element-name reuse — ``name`` appears in seven
different parent contexts, the paper's canonical example of why
D(k)-construct over-refines irrelevant index nodes.
"""

from __future__ import annotations

from repro.datasets.dtd import Child, Reference, Schema, schema_from_dict
from repro.datasets.generator import generate_document
from repro.graph.datagraph import DataGraph

#: Node budget at scale 1.0 (the paper's NASA document has ~90k nodes).
BASE_NODES = 90_000

#: The seven parent contexts of ``name`` (asserted by the test suite).
NAME_CONTEXTS = ("author", "creator", "institution", "field", "parameter",
                 "contact", "journal")


def nasa_schema(multiplier: int = 1) -> Schema:
    """The astronomy-archive schema.

    ``multiplier`` scales the number of datasets in the archive; each
    dataset subtree keeps its (irregular) shape.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    declarations = {
        "datasets": [Child("dataset", 3 * multiplier, 7 * multiplier)],
        "dataset": ["identifier",
                    Child("altname", 1, 2),
                    "title",
                    Child("author", 1, 3),
                    Child("contact", probability=0.4),
                    Child("definitions", probability=0.5),
                    "history",
                    Child("reference", 0, 3),
                    Child("keywords", probability=0.5),
                    Child("descriptions", probability=0.6),
                    Child("parameter", 0, 3),
                    Child("see_also", 0, 2),
                    "tableHead"],
        "author": ["name", Child("affiliation", probability=0.4)],
        "contact": ["name", Child("institution", probability=0.5)],
        "institution": ["name"],
        "name": [Child("first", probability=0.7), "last"],
        "definitions": [Child("def", 1, 3)],
        "def": ["term", "meaning"],
        "history": [Child("creator", probability=0.8),
                    Child("ingest", probability=0.5),
                    Child("revision", 0, 3)],
        "creator": ["name", Child("date", probability=0.5)],
        "ingest": ["creator", "date"],
        "revision": ["date", Child("comment", probability=0.4),
                     Child("author", probability=0.5)],
        "reference": [Child("source", probability=0.8)],
        "source": [Child("journal", probability=0.6),
                   Child("other", probability=0.4)],
        "journal": ["name", "title", Child("author", 0, 2),
                    Child("volume", probability=0.5),
                    Child("page", probability=0.4), "year"],
        "other": ["title", Child("date", probability=0.5)],
        "descriptions": [Child("description", 1, 2)],
        "description": [Child("para", 1, 3), Child("footnote", 0, 2)],
        "footnote": [Child("para", probability=0.6)],
        "keywords": [Child("keyword", 1, 4)],
        "parameter": ["name", Child("unit", probability=0.5)],
        "tableHead": [Child("tableLinks", probability=0.5), "fields"],
        "tableLinks": [Child("tableLink", 1, 3)],
        "fields": [Child("field", 2, 6)],
        "field": ["name", Child("definition", probability=0.6),
                  Child("units", probability=0.5)],
    }
    references = {
        "tableLink": [Reference("dataset")],
        "see_also": [Reference("dataset")],
        "reference": [Reference("dataset", probability=0.4)],
        "keyword": [Reference("field", probability=0.3)],
        "revision": [Reference("revision", probability=0.3)],
    }
    return schema_from_dict("datasets", declarations, references)


def generate_nasa(scale: float = 0.05, seed: int = 11) -> DataGraph:
    """Generate a NASA-like document.

    ``scale=1.0`` approximates the paper's ~90k-node document; the default
    keeps full experiment sweeps fast (all metrics are counts, so shapes
    are scale-stable — see DESIGN.md).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    max_nodes = max(200, int(BASE_NODES * scale))
    # Two-pass sizing (see generate_xmark): reach the target size by
    # archive breadth, not by truncating subtrees mid-expansion.
    base = generate_document(nasa_schema(), max_nodes, seed=seed)
    if base.num_nodes >= max_nodes:
        return base
    multiplier = max(1, round(max_nodes / base.num_nodes))
    return generate_document(nasa_schema(multiplier), max_nodes, seed=seed)
