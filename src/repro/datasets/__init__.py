"""Synthetic datasets reproducing the structural properties of the paper's
XMark and NASA documents (see DESIGN.md for the substitution rationale)."""

from repro.datasets.dblp import dblp_schema, generate_dblp
from repro.datasets.dtd import Child, Element, Reference, Schema
from repro.datasets.generator import DocumentGenerator, generate_document
from repro.datasets.nasa import generate_nasa, nasa_schema
from repro.datasets.xmark import generate_xmark, xmark_schema

__all__ = [
    "Child",
    "DocumentGenerator",
    "Element",
    "Reference",
    "Schema",
    "dblp_schema",
    "generate_dblp",
    "generate_document",
    "generate_nasa",
    "generate_xmark",
    "nasa_schema",
    "xmark_schema",
]
