"""Binary serialisation of data graphs and M*(k)-indexes.

A small, dependency-free binary format (struct-packed, little-endian)
with length-prefixed UTF-8 label tables.  ``save_graph``/``load_graph``
round-trip :class:`~repro.graph.datagraph.DataGraph`;
``save_mstar``/``load_mstar`` round-trip a refined
:class:`~repro.indexes.mstarindex.MStarIndex` against a given graph.
The disk-resident index (:mod:`repro.storage.diskindex`) shares the
low-level record encoders defined here.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterable
from io import BufferedReader, BufferedWriter

from repro.graph.datagraph import DataGraph, EdgeKind
from repro.indexes.mstarindex import MStarIndex

GRAPH_MAGIC = b"RPGR"
MSTAR_MAGIC = b"RPMS"
FORMAT_VERSION = 1

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")


def write_u32(out: BufferedWriter, value: int) -> None:
    out.write(_U32.pack(value))


def read_u32(source: BufferedReader) -> int:
    data = source.read(4)
    if len(data) != 4:
        raise ValueError("truncated file")
    return _U32.unpack(data)[0]


def write_u32_list(out: BufferedWriter, values: "Iterable[int]") -> None:
    values = list(values)
    write_u32(out, len(values))
    out.write(struct.pack(f"<{len(values)}I", *values))


def read_u32_list(source: BufferedReader) -> list[int]:
    count = read_u32(source)
    data = source.read(4 * count)
    if len(data) != 4 * count:
        raise ValueError("truncated file")
    return list(struct.unpack(f"<{count}I", data))


def write_string(out: BufferedWriter, text: str) -> None:
    encoded = text.encode("utf-8")
    write_u32(out, len(encoded))
    out.write(encoded)


def read_string(source: BufferedReader) -> str:
    length = read_u32(source)
    data = source.read(length)
    if len(data) != length:
        raise ValueError("truncated file")
    return data.decode("utf-8")


def write_label_table(out: BufferedWriter, labels: list[str]) -> dict[str, int]:
    """Write a distinct-label table; return label -> id mapping."""
    table = sorted(set(labels))
    write_u32(out, len(table))
    for label in table:
        write_string(out, label)
    return {label: index for index, label in enumerate(table)}


def read_label_table(source: BufferedReader) -> list[str]:
    count = read_u32(source)
    return [read_string(source) for _ in range(count)]


# ----------------------------------------------------------------------
# Data graphs
# ----------------------------------------------------------------------
def save_graph(graph: DataGraph, path: str) -> None:
    """Write a data graph to ``path`` (losslessly, including edge kinds)."""
    with open(path, "wb") as out:
        out.write(GRAPH_MAGIC)
        write_u32(out, FORMAT_VERSION)
        label_ids = write_label_table(out, graph.labels)
        write_u32(out, graph.num_nodes)
        out.write(struct.pack(f"<{graph.num_nodes}I",
                              *(label_ids[label] for label in graph.labels)))
        write_u32(out, graph.root)
        regular = []
        references = []
        for parent, child in graph.edges():
            if graph.edge_kind(parent, child) is EdgeKind.REFERENCE:
                references.append((parent, child))
            else:
                regular.append((parent, child))
        for edges in (regular, references):
            write_u32(out, len(edges))
            flat = [oid for edge in edges for oid in edge]
            out.write(struct.pack(f"<{len(flat)}I", *flat))


def load_graph(path: str) -> DataGraph:
    """Read a data graph written by :func:`save_graph`."""
    with open(path, "rb") as source:
        if source.read(4) != GRAPH_MAGIC:
            raise ValueError(f"{path} is not a repro graph file")
        version = read_u32(source)
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported graph format version {version}")
        table = read_label_table(source)
        num_nodes = read_u32(source)
        label_ids = struct.unpack(f"<{num_nodes}I", source.read(4 * num_nodes))
        root = read_u32(source)
        graph = DataGraph()
        for label_id in label_ids:
            graph.add_node(table[label_id])
        for kind in (EdgeKind.REGULAR, EdgeKind.REFERENCE):
            count = read_u32(source)
            flat = struct.unpack(f"<{2 * count}I", source.read(8 * count))
            for index in range(count):
                graph.add_edge(flat[2 * index], flat[2 * index + 1], kind=kind)
        graph.root = root
        return graph


# ----------------------------------------------------------------------
# Index-node records (shared with the disk-resident index)
# ----------------------------------------------------------------------
def encode_index_node(nid: int, label_id: int, k: int, extent: list[int],
                      children: list[int], subnodes: list[int]) -> bytes:
    """Encode one index-node record."""
    parts = [_U32.pack(nid), _U32.pack(label_id), _U16.pack(k)]
    for values in (extent, children, subnodes):
        parts.append(_U32.pack(len(values)))
        parts.append(struct.pack(f"<{len(values)}I", *values))
    return b"".join(parts)


def decode_index_node(data: bytes, offset: int) -> tuple[dict, int]:
    """Decode one record at ``offset``; return (record, next offset)."""
    nid, label_id = struct.unpack_from("<II", data, offset)
    offset += 8
    (k,) = struct.unpack_from("<H", data, offset)
    offset += 2
    fields = []
    for _ in range(3):
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        fields.append(list(struct.unpack_from(f"<{count}I", data, offset)))
        offset += 4 * count
    record = {"nid": nid, "label_id": label_id, "k": k,
              "extent": fields[0], "children": fields[1],
              "subnodes": fields[2]}
    return record, offset


# ----------------------------------------------------------------------
# Whole M*(k)-indexes (exact in-memory round trip)
# ----------------------------------------------------------------------
def save_mstar(index: MStarIndex, path: str) -> None:
    """Write a (refined) M*(k)-index to ``path``.

    The data graph itself is not stored; :func:`load_mstar` re-attaches
    the index to the graph it was built over.
    """
    with open(path, "wb") as out:
        out.write(MSTAR_MAGIC)
        write_u32(out, FORMAT_VERSION)
        label_ids = write_label_table(out, index.graph.labels)
        write_u32(out, len(index.components))
        # Node ids are sparse after refinement; renumber densely per
        # component (the loader recreates them in this order).
        mappings = [{nid: dense for dense, nid in enumerate(sorted(component.nodes))}
                    for component in index.components]
        for i, component in enumerate(index.components):
            write_u32(out, len(component.nodes))
            is_last = i == index.max_resolution
            mapping = mappings[i]
            for nid in sorted(component.nodes):
                node = component.nodes[nid]
                children = sorted(mapping[child]
                                  for child in component.children_of(nid))
                subnodes = (sorted(mappings[i + 1][sub]
                                   for sub in index.subnodes[i][nid])
                            if not is_last else [])
                out.write(encode_index_node(
                    mapping[nid], label_ids[node.label], node.k,
                    list(node.extent), children, subnodes))


def load_mstar(path: str, graph: DataGraph) -> MStarIndex:
    """Read an M*(k)-index written by :func:`save_mstar`.

    ``graph`` must be the data graph the index was built over (checked
    via extent coverage and label consistency).
    """
    with open(path, "rb") as source:
        if source.read(4) != MSTAR_MAGIC:
            raise ValueError(f"{path} is not a repro M*(k) file")
        version = read_u32(source)
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        table = read_label_table(source)
        num_components = read_u32(source)
        # Explicit-length read (storage-io discipline): the payload runs
        # to end-of-file, so size it from fstat instead of slurping an
        # unbounded read() — a truncated file fails here, loudly.
        remaining = os.fstat(source.fileno()).st_size - source.tell()
        payload = source.read(remaining)
        if len(payload) != remaining:
            raise ValueError(f"truncated index payload in {path}")

    index = MStarIndex.__new__(MStarIndex)
    index.graph = graph
    index.components = []
    index.supernode = []
    index.subnodes = []
    index._optimizer = None

    from repro.indexes.base import IndexGraph

    offset = 0
    all_subnodes: list[dict[int, list[int]]] = []
    position = 0
    # num-node prefixes are interleaved in the payload stream.
    data = payload
    for i in range(num_components):
        (num_nodes,) = struct.unpack_from("<I", data, position)
        position += 4
        component = IndexGraph(graph)
        subnode_map: dict[int, list[int]] = {}
        for _ in range(num_nodes):
            record, position = decode_index_node(data, position)
            label = table[record["label_id"]]
            if any(graph.labels[oid] != label for oid in record["extent"]):
                raise ValueError("index file does not match this data graph")
            created = component._add_node(record["extent"], record["k"])
            if created != record["nid"]:
                # _add_node numbers sequentially; remap is not supported,
                # but save_mstar writes nodes in ascending nid order after
                # renumbering, so ids are dense here.
                raise ValueError("non-dense node ids in index file")
            subnode_map[record["nid"]] = record["subnodes"]
        component._assert_covering()
        component._rebuild_edges()
        index.components.append(component)
        all_subnodes.append(subnode_map)

    index.supernode.append({})
    for i in range(num_components - 1):
        index.subnodes.append({nid: set(subs)
                               for nid, subs in all_subnodes[i].items()})
        supernode_map: dict[int, int] = {}
        for nid, subs in all_subnodes[i].items():
            for sub in subs:
                supernode_map[sub] = nid
        index.supernode.append(supernode_map)
    return index
