"""The disk-resident M*(k)-index (Section 6's future work, built).

``DiskMStarIndex.build`` serialises a refined in-memory
:class:`~repro.indexes.mstarindex.MStarIndex` into a paged file: every
component's nodes are packed into fixed-budget pages, with a per-
component label directory and node-to-page locator kept in the (small)
header.  Queries run the paper's top-down strategy, fetching index
nodes through an LRU :class:`~repro.storage.pager.BufferPool` — so a
short query touches only the pages of the coarse components, which is
exactly the "loaded into memory selectively and incrementally" goal the
paper states.

The structure is read-only: refinement happens in memory and a new file
is built (the classic build/serve split for secondary indexes).
Validation uses the in-memory data graph, as in the paper's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.counters import CostCounter
from repro.graph.datagraph import DataGraph
from repro.indexes.base import QueryResult
from repro.indexes.mstarindex import MStarIndex
from repro.obs import trace as _trace
from repro.queries.evaluator import required_similarity, validate_candidate
from repro.queries.pathexpr import WILDCARD, PathExpression
from repro.storage.pager import DEFAULT_PAGE_SIZE, BufferPool, PageFile, PageRef
from repro.storage.serialization import (
    FORMAT_VERSION,
    encode_index_node,
    read_label_table,
    read_string,
    read_u32,
    read_u32_list,
    write_label_table,
    write_string,
    write_u32,
    write_u32_list,
)

DISK_MAGIC = b"RPDI"


@dataclass
class _TargetNode:
    """Materialised view of one on-disk index node (query result detail)."""

    nid: int
    label: str
    k: int
    extent: set[int] = field(default_factory=set)


class DiskMStarIndex:
    """Read-only, paged M*(k)-index queried through a buffer pool."""

    def __init__(self, path: str, graph: DataGraph,
                 buffer_pages: int = 64) -> None:
        self.path = path
        self.graph = graph
        with open(path, "rb") as source:
            if source.read(4) != DISK_MAGIC:
                raise ValueError(f"{path} is not a repro disk-index file")
            version = read_u32(source)
            if version != FORMAT_VERSION:
                raise ValueError(f"unsupported disk format version {version}")
            self.labels = read_label_table(source)
            self.num_components = read_u32(source)
            self.page_size = read_u32(source)
            # Per-component directories (all small; kept in memory like a
            # catalog): label -> node ids, node id -> page number.
            self._by_label: list[dict[str, list[int]]] = []
            self._page_of: list[list[int]] = []
            pages: dict[tuple[int, int], PageRef] = {}
            for component in range(self.num_components):
                directory: dict[str, list[int]] = {}
                for _ in range(read_u32(source)):
                    label = read_string(source)
                    directory[label] = read_u32_list(source)
                self._by_label.append(directory)
                self._page_of.append(read_u32_list(source))
                for page_number in range(read_u32(source)):
                    offset = read_u32(source)
                    length = read_u32(source)
                    pages[(component, page_number)] = PageRef(offset, length)
        self._file = PageFile(path, pages)
        self.pool = BufferPool(self._file, buffer_pages)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, index: MStarIndex, path: str,
              page_size: int = DEFAULT_PAGE_SIZE,
              buffer_pages: int = 64) -> "DiskMStarIndex":
        """Serialise ``index`` into a paged file at ``path`` and open it."""
        if page_size < 64:
            raise ValueError("page_size must be >= 64 bytes")
        graph = index.graph
        # The label table is written sorted, so its ids are known upfront.
        label_ids = {label: position
                     for position, label in enumerate(sorted(graph.alphabet()))}
        mappings = [{nid: dense
                     for dense, nid in enumerate(sorted(component.nodes))}
                    for component in index.components]

        # Encode records and pack them into pages, component by component.
        component_pages: list[list[bytes]] = []
        page_of: list[list[int]] = []
        by_label: list[dict[str, list[int]]] = []
        for i, component in enumerate(index.components):
            mapping = mappings[i]
            is_last = i == index.max_resolution
            pages: list[bytes] = []
            current: list[bytes] = []
            current_size = 0
            locator = [0] * len(component.nodes)
            directory: dict[str, list[int]] = {}
            for nid in sorted(component.nodes):
                node = component.nodes[nid]
                dense = mapping[nid]
                children = sorted(mapping[child]
                                  for child in component.children_of(nid))
                subnodes = (sorted(mappings[i + 1][sub]
                                   for sub in index.subnodes[i][nid])
                            if not is_last else [])
                record = encode_index_node(dense, label_ids[node.label],
                                           node.k, list(node.extent),
                                           children, subnodes)
                directory.setdefault(node.label, []).append(dense)
                if current and current_size + len(record) > page_size:
                    pages.append(b"".join(current))
                    current = []
                    current_size = 0
                locator[dense] = len(pages)
                current.append(record)
                current_size += len(record)
            if current:
                pages.append(b"".join(current))
            component_pages.append(pages)
            page_of.append(locator)
            by_label.append(directory)

        with open(path, "wb") as out:
            out.write(DISK_MAGIC)
            write_u32(out, FORMAT_VERSION)
            write_label_table(out, graph.labels)
            write_u32(out, len(index.components))
            write_u32(out, page_size)

            # Directories + placeholder page tables first, then the pages,
            # then patch the page tables with the final offsets.
            page_table_positions = []
            for i in range(len(index.components)):
                directory = by_label[i]
                write_u32(out, len(directory))
                for label in sorted(directory):
                    write_string(out, label)
                    write_u32_list(out, directory[label])
                write_u32_list(out, page_of[i])
                write_u32(out, len(component_pages[i]))
                page_table_positions.append(out.tell())
                out.write(b"\0" * (8 * len(component_pages[i])))

            page_refs: list[list[tuple[int, int]]] = []
            for pages in component_pages:
                refs = []
                for page in pages:
                    refs.append((out.tell(), len(page)))
                    out.write(page)
                page_refs.append(refs)

            for position, refs in zip(page_table_positions, page_refs):
                out.seek(position)
                for offset, length in refs:
                    write_u32(out, offset)
                    write_u32(out, length)

        return cls(path, graph, buffer_pages=buffer_pages)

    # ------------------------------------------------------------------
    # Record access through the pool
    # ------------------------------------------------------------------
    def _record(self, component: int, nid: int) -> dict:
        page_number = self._page_of[component][nid]
        return self.pool.page((component, page_number))[nid]

    def nodes_with_label(self, component: int, label: str) -> list[int]:
        return self._by_label[component].get(label, [])

    # ------------------------------------------------------------------
    # Querying (top-down, the paper's strategy)
    # ------------------------------------------------------------------
    def query(self, expr: PathExpression,
              counter: CostCounter | None = None) -> QueryResult:
        """Top-down evaluation with on-demand page loads.

        Index-node visits are charged as in the in-memory index; physical
        I/O shows up in :attr:`pool` (``reads`` / ``hits``).
        """
        tracer = _trace.TRACER
        if tracer.enabled:
            with tracer.span("diskindex.query", query=str(expr)) as span:
                result = self._query_impl(expr, counter)
                span.tag(answers=len(result.answers),
                         validated=result.validated)
                return result
        return self._query_impl(expr, counter)

    def _query_impl(self, expr: PathExpression,
                    counter: CostCounter | None = None) -> QueryResult:
        cost = counter if counter is not None else CostCounter()
        last = self.num_components - 1
        if expr.rooted:
            # Start from every node carrying the root's label: the label
            # class need not be a singleton, but navigation only ever
            # overapproximates — the precision test below (via
            # required_similarity) refuses to certify rooted answers
            # unless the root's label is unique, so impostor paths are
            # caught by validation.
            root_label = self.graph.labels[self.graph.root]
            frontier = set(self.nodes_with_label(0, root_label))
            cost.index_visits += len(frontier)
            positions = range(len(expr.labels))
        else:
            first = expr.labels[0]
            if first == WILDCARD:
                frontier = {nid for nids in self._by_label[0].values()
                            for nid in nids}
            else:
                frontier = set(self.nodes_with_label(0, first))
            cost.index_visits += len(frontier)
            positions = range(1, len(expr.labels))
        edge_offset = 1 if expr.rooted else 0
        current = 0
        for position in positions:
            target_component = min(position + edge_offset, last)
            while current < target_component and frontier:
                descended: set[int] = set()
                for nid in frontier:
                    subs = self._record(current, nid)["subnodes"]
                    cost.index_visits += len(subs)
                    descended.update(subs)
                frontier = descended
                current += 1
            label = expr.labels[position]
            if position in expr.descendant_steps:
                # Descendant axis: close over >= 1 child edges, then match.
                reached: set[int] = set()
                queue = list(frontier)
                while queue:
                    nid = queue.pop()
                    for child in self._record(current, nid)["children"]:
                        cost.index_visits += 1
                        if child not in reached:
                            reached.add(child)
                            queue.append(child)
                stepped = {nid for nid in reached
                           if label == WILDCARD or self.labels[
                               self._record(current, nid)["label_id"]] == label}
            else:
                stepped = set()
                for nid in frontier:
                    for child in self._record(current, nid)["children"]:
                        cost.index_visits += 1
                        child_record = self._record(current, child)
                        if label == WILDCARD or \
                                self.labels[child_record["label_id"]] == label:
                            stepped.add(child)
            frontier = stepped
            if not frontier:
                break

        required = required_similarity(self.graph, expr)
        answers: set[int] = set()
        targets: list[_TargetNode] = []
        validated = False
        for nid in sorted(frontier):
            record = self._record(current, nid)
            extent = set(record["extent"])
            targets.append(_TargetNode(nid=nid,
                                       label=self.labels[record["label_id"]],
                                       k=record["k"], extent=extent))
            if record["k"] >= required:
                answers |= extent
            else:
                validated = True
                for oid in extent:
                    if validate_candidate(self.graph, expr, oid, cost):
                        answers.add(oid)
        return QueryResult(answers=answers, target_nodes=targets,  # type: ignore[arg-type]
                           cost=cost, validated=validated)

    # ------------------------------------------------------------------
    # Stats and lifecycle
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self._file.pages)

    def io_stats(self) -> tuple[int, int]:
        """(physical page reads, pool hits) since the last reset."""
        return self.pool.reads, self.pool.hits

    def reset_io_stats(self) -> None:
        self.pool.reset_stats()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "DiskMStarIndex":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"DiskMStarIndex(components={self.num_components}, "
                f"pages={self.page_count}, "
                f"buffer={self.pool.capacity} pages)")
