"""Trace-driven background prefetch for the buffer pool.

The pager already exports its access trace (PR 3 metrics: hits, misses,
per-page spans); :class:`BackgroundPrefetcher` closes the loop.  It
watches the pool's demand-miss stream, and when the recent trace shows a
sequential pattern inside one component — a miss on page ``p`` with
``p-1`` missed shortly before — it schedules the next ``depth`` pages
on a daemon thread.  Sequential consumers (extent scans, ``iter_all``,
hierarchy walks) then find their next page already resident; random
point lookups never trigger it, so the pool is not polluted by
speculation on non-sequential workloads.

Usefulness is measurable, not assumed: ``pager_prefetch_pages_total``
counts speculative loads and ``pager_prefetch_hits_total`` counts the
demand requests they absorbed (both on the metrics registry, and as
``prefetches`` / ``prefetch_hits`` pool counters).
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from typing import TYPE_CHECKING

from repro.obs import trace as _trace

if TYPE_CHECKING:
    from repro.storage.pager import BufferPool

_STOP = object()


class BackgroundPrefetcher:
    """Sequential-run detector + background page loader for one pool.

    Attach with ``attach()`` (installs the pool's miss listener); detach
    with ``stop()``.  The miss listener only enqueues (it runs under the
    pool lock); all physical I/O happens on the daemon thread through
    ``pool.prefetch``, which never counts a demand miss and never
    evicts pinned pages.
    """

    def __init__(self, pool: "BufferPool", *, depth: int = 2,
                 window: int = 16) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.pool = pool
        self.depth = depth
        #: Recent demand misses (the trace the heuristic reads).
        self._recent: deque[tuple[int, int]] = deque(maxlen=window)
        self._queue: queue.Queue = queue.Queue()
        self._thread: threading.Thread | None = None
        self.scheduled = 0
        self.loaded = 0

    # ------------------------------------------------------------------
    # Pool-facing side (runs under the pool lock — enqueue only)
    # ------------------------------------------------------------------
    def note(self, key: tuple[int, int]) -> None:
        component, page = key
        sequential = (component, page - 1) in self._recent
        self._recent.append(key)
        if not sequential:
            return
        for ahead in range(1, self.depth + 1):
            target = (component, page + ahead)
            if target in self.pool.file.pages:
                self._queue.put(target)
                self.scheduled += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "BackgroundPrefetcher":
        self.pool.set_miss_listener(self.note)
        self._thread = threading.Thread(target=self._run,
                                        name="repro-prefetch", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.pool.set_miss_listener(None)
        if self._thread is not None:
            self._queue.put(_STOP)
            self._thread.join(timeout=5.0)
            self._thread = None

    def drain(self, timeout: float = 5.0) -> None:
        """Testing hook: block until the queue has been consumed."""
        done = threading.Event()
        self._queue.put(done)
        done.wait(timeout)

    def _run(self) -> None:
        tracer = _trace.TRACER
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if isinstance(item, threading.Event):
                item.set()
                continue
            span = tracer.span("pager.prefetch", component=item[0],
                               page=item[1]) if tracer.enabled \
                else _trace.NULL_SPAN
            with span:
                if self.pool.prefetch(item):
                    self.loaded += 1

    def __enter__(self) -> "BackgroundPrefetcher":
        return self.attach()

    def __exit__(self, *_exc: object) -> None:
        self.stop()
