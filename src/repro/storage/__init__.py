"""Disk-resident index storage — the paper's stated future work.

Section 6 closes with: "We are currently studying how to make the
M*(k)-index I/O-efficient by turning it into a disk-resident structure
that can be loaded into memory selectively and incrementally during
query processing."  This subpackage builds that structure:

* :mod:`repro.storage.serialization` — binary round-tripping of data
  graphs and M*(k)-indexes;
* :mod:`repro.storage.pager` — a page file (optionally mmap-backed,
  checksum-verified) plus an LRU buffer pool with pin counts, a
  scan-resistant admission policy, eviction epochs, and read/hit
  accounting;
* :mod:`repro.storage.segment` — the immutable paged segment format:
  sorted key runs + offset footer, bisect/readv lookup that touches
  only the pages a query needs;
* :mod:`repro.storage.spill` — bounded-RAM spill-path construction
  (external runs under ``REPRO_STORAGE_BUDGET``, merged through
  ``Extent.from_sorted`` into segments) for A(k) and the M*(k)
  resolution hierarchy, plus paged CSR adjacency;
* :mod:`repro.storage.prefetch` — trace-driven background prefetch for
  sequential page runs;
* :mod:`repro.storage.diskindex` — :class:`DiskMStarIndex`, a read-only
  on-disk M*(k)-index whose top-down query algorithm touches only the
  pages holding the index nodes it walks, so short queries stay inside
  the (small, hot) coarse components.

See ``docs/storage.md`` for the format, pager policy, and recovery
semantics.
"""

from repro.storage.diskindex import DiskMStarIndex
from repro.storage.pager import BufferPool, PageFile
from repro.storage.prefetch import BackgroundPrefetcher
from repro.storage.segment import (
    Segment,
    SegmentCorruption,
    SegmentError,
    SegmentFormatError,
    SegmentWriter,
)
from repro.storage.serialization import (
    load_graph,
    load_mstar,
    save_graph,
    save_mstar,
)
from repro.storage.spill import (
    BUDGET_ENV,
    OocBuildReport,
    PagedAdjacency,
    SpillSorter,
    build_adjacency_segment,
    build_ak_segment,
    build_hierarchy_segment,
    extents_digest,
    inram_ak_digest,
    inram_hierarchy_digest,
)

__all__ = [
    "BUDGET_ENV",
    "BackgroundPrefetcher",
    "BufferPool",
    "DiskMStarIndex",
    "OocBuildReport",
    "PageFile",
    "PagedAdjacency",
    "Segment",
    "SegmentCorruption",
    "SegmentError",
    "SegmentFormatError",
    "SegmentWriter",
    "SpillSorter",
    "build_adjacency_segment",
    "build_ak_segment",
    "build_hierarchy_segment",
    "extents_digest",
    "inram_ak_digest",
    "inram_hierarchy_digest",
    "load_graph",
    "load_mstar",
    "save_graph",
    "save_mstar",
]
