"""Disk-resident index storage — the paper's stated future work.

Section 6 closes with: "We are currently studying how to make the
M*(k)-index I/O-efficient by turning it into a disk-resident structure
that can be loaded into memory selectively and incrementally during
query processing."  This subpackage builds that structure:

* :mod:`repro.storage.serialization` — binary round-tripping of data
  graphs and M*(k)-indexes;
* :mod:`repro.storage.pager` — a page file plus an LRU buffer pool with
  read/hit accounting;
* :mod:`repro.storage.diskindex` — :class:`DiskMStarIndex`, a read-only
  on-disk M*(k)-index whose top-down query algorithm touches only the
  pages holding the index nodes it walks, so short queries stay inside
  the (small, hot) coarse components.
"""

from repro.storage.diskindex import DiskMStarIndex
from repro.storage.pager import BufferPool, PageFile
from repro.storage.serialization import (
    load_graph,
    load_mstar,
    save_graph,
    save_mstar,
)

__all__ = [
    "BufferPool",
    "DiskMStarIndex",
    "PageFile",
    "load_graph",
    "load_mstar",
    "save_graph",
    "save_mstar",
]
