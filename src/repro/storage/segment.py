"""Immutable paged index segments: sorted key runs + offset footer.

The on-disk building block of the out-of-core data plane (bzrlib's
``index.py`` is the design exemplar: bisect-based lookup over immutable
on-disk nodes that never loads a whole index).  A segment is written
once, streaming, in ascending key order, and read forever after through
a page directory kept in memory — a point lookup bisects the directory
and reads exactly one page; a sorted multi-get coalesces keys by page
(readv-style) and reads each touched page once.

Byte layout (all integers little-endian ``u32``; see the golden tests
in ``tests/test_storage_format.py`` which pin it byte-for-byte):

.. code-block:: text

    offset 0   magic   b"RPSG"
    offset 4   version u32          (SEGMENT_VERSION)
    offset 8   pages…               (concatenated record runs)
    F          footer:
                 meta_len u32, meta bytes (UTF-8 JSON)
                 page_count u32
                 page_count × (first_key u32, last_key u32,
                               offset u32, length u32, crc32 u32)
                 record_count u32
    size-12    trailer: footer_offset u32, footer_crc32 u32,
               tail magic b"GSPR"

A record inside a page is ``key u32, value_len u32, value bytes``; keys
are strictly ascending across the whole file.  Every page carries a
CRC-32 in the footer, verified by :class:`~repro.storage.pager.PageFile`
on each physical read — a torn write or bit flip surfaces as a
``ValueError`` naming the page key, never as wrong bytes.  The trailer
is written last: a crash mid-build leaves a file with no valid trailer,
which :meth:`Segment.open` refuses with a clear error instead of
guessing at a partial footer.
"""

from __future__ import annotations

import json
import struct
import zlib
from bisect import bisect_right
from collections.abc import Callable, Iterable, Iterator
from typing import IO, Any

from repro.storage.pager import DEFAULT_PAGE_SIZE, BufferPool, PageFile, PageRef

SEGMENT_MAGIC = b"RPSG"
SEGMENT_TAIL = b"GSPR"
SEGMENT_VERSION = 2
_HEADER_SIZE = 8
_TRAILER_SIZE = 12
_U32 = struct.Struct("<I")
_REC = struct.Struct("<II")
_DIR_ENTRY = struct.Struct("<IIIII")


class SegmentError(ValueError):
    """Base class for segment format/corruption errors."""


class SegmentFormatError(SegmentError):
    """The file is not a (readable, current-version) segment."""


class SegmentCorruption(SegmentError):
    """Stored bytes failed a checksum or structural check."""


def decode_segment_page(data: bytes) -> list[tuple[int, bytes]]:
    """Parse one page into ``[(key, value), ...]`` (ascending keys)."""
    records: list[tuple[int, bytes]] = []
    offset = 0
    end = len(data)
    while offset < end:
        key, length = _REC.unpack_from(data, offset)
        offset += _REC.size
        if offset + length > end:
            raise ValueError(
                f"record for key {key} overruns the page "
                f"({offset + length} > {end})")
        records.append((key, data[offset:offset + length]))
        offset += length
    return records


class SegmentWriter:
    """Streams ``(ascending int key, bytes)`` records into a segment.

    Keys must be strictly ascending (the reader's bisect depends on it).
    ``opener`` is injectable for fault testing; write failures propagate
    to the caller and leave a trailer-less file that
    :meth:`Segment.open` refuses cleanly.
    """

    def __init__(self, path: str, *, page_size: int = DEFAULT_PAGE_SIZE,
                 meta: dict | None = None,
                 opener: "Callable[..., IO[bytes]]" = open) -> None:
        if page_size < 64:
            raise ValueError("page_size must be >= 64 bytes")
        self.path = path
        self.page_size = page_size
        self.meta = dict(meta) if meta else {}
        self._out = opener(path, "wb")
        self._out.write(SEGMENT_MAGIC)
        self._out.write(_U32.pack(SEGMENT_VERSION))
        self._position = _HEADER_SIZE
        self._current: list[bytes] = []
        self._current_size = 0
        self._first_key = -1
        self._prev_key = -1
        #: (first_key, last_key, offset, length, crc32) per flushed page.
        self._directory: list[tuple[int, int, int, int, int]] = []
        self.records = 0
        self._finished = False

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently buffered for the open page (working set)."""
        return self._current_size

    def add(self, key: int, value: bytes) -> None:
        if self._finished:
            raise ValueError("segment already finished")
        if key <= self._prev_key:
            raise ValueError(
                f"segment keys must be strictly ascending "
                f"(got {key} after {self._prev_key})")
        record = _REC.pack(key, len(value)) + value
        if self._current and \
                self._current_size + len(record) > self.page_size:
            self._flush_page()
        if not self._current:
            self._first_key = key
        self._current.append(record)
        self._current_size += len(record)
        self._prev_key = key
        self.records += 1

    def _flush_page(self) -> None:
        data = b"".join(self._current)
        self._directory.append(
            (self._first_key, self._prev_key, self._position, len(data),
             zlib.crc32(data)))
        self._out.write(data)
        self._position += len(data)
        self._current = []
        self._current_size = 0

    def finish(self) -> int:
        """Flush, write footer + trailer, fsync, close; returns file size."""
        if self._finished:
            raise ValueError("segment already finished")
        if self._current:
            self._flush_page()
        footer_offset = self._position
        meta_bytes = json.dumps(self.meta, sort_keys=True,
                                separators=(",", ":")).encode("utf-8")
        footer = bytearray()
        footer += _U32.pack(len(meta_bytes))
        footer += meta_bytes
        footer += _U32.pack(len(self._directory))
        for entry in self._directory:
            footer += _DIR_ENTRY.pack(*entry)
        footer += _U32.pack(self.records)
        self._out.write(footer)
        self._out.write(_U32.pack(footer_offset))
        self._out.write(_U32.pack(zlib.crc32(bytes(footer))))
        self._out.write(SEGMENT_TAIL)
        self._out.flush()
        self._finished = True
        size = footer_offset + len(footer) + _TRAILER_SIZE
        self._out.close()
        return size

    def abort(self) -> None:
        """Close without a trailer (the file stays unopenable)."""
        if not self._finished:
            self._finished = True
            self._out.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, exc_type: object, *_exc: object) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._finished:
            self.finish()


class Segment:
    """Read-only view of one segment file, paged through a buffer pool.

    The page directory (first/last key + offset + CRC per page) lives in
    memory; page payloads are fetched on demand through an LRU
    :class:`~repro.storage.pager.BufferPool` with checksum verification
    on every physical read.
    """

    def __init__(self, path: str, *, buffer_pages: int = 16,
                 use_mmap: bool = True, admission: str = "lru",
                 opener: "Callable[..., IO[bytes]]" = open) -> None:
        self.path = path
        handle = opener(path, "rb")
        try:
            self._parse_catalog(handle, path)
        except Exception:
            handle.close()
            raise
        pages: dict[tuple[int, int], PageRef] = {}
        checksums: dict[tuple[int, int], int] = {}
        for number, (_first, _last, offset, length, crc) in \
                enumerate(self._directory):
            pages[(0, number)] = PageRef(offset, length)
            checksums[(0, number)] = crc
        self._file = PageFile(path, pages, decoder=decode_segment_page,
                              checksums=checksums, use_mmap=use_mmap,
                              handle=handle)
        self.pool = BufferPool(self._file, max(1, buffer_pages),
                               admission=admission)
        self._first_keys = [entry[0] for entry in self._directory]

    def _parse_catalog(self, handle: Any, path: str) -> None:
        handle.seek(0, 2)
        size = handle.tell()
        if size < _HEADER_SIZE + _TRAILER_SIZE:
            raise SegmentFormatError(
                f"{path} is too short ({size} bytes) to be a segment")
        handle.seek(0)
        magic = handle.read(4)
        if magic != SEGMENT_MAGIC:
            raise SegmentFormatError(
                f"{path} is not a repro segment file "
                f"(magic {magic!r}, expected {SEGMENT_MAGIC!r})")
        version_bytes = handle.read(4)
        if len(version_bytes) != 4:
            raise SegmentFormatError(f"{path}: truncated segment header")
        (version,) = _U32.unpack(version_bytes)
        if version != SEGMENT_VERSION:
            raise SegmentFormatError(
                f"{path}: unsupported segment format version {version} "
                f"(this build reads version {SEGMENT_VERSION}); rebuild "
                f"the segment from its source index")
        handle.seek(size - _TRAILER_SIZE)
        trailer = handle.read(_TRAILER_SIZE)
        if len(trailer) != _TRAILER_SIZE or \
                trailer[8:] != SEGMENT_TAIL:
            raise SegmentFormatError(
                f"{path}: no valid segment trailer — the file is "
                f"truncated or a build crashed before finish(); rebuild "
                f"the segment")
        (footer_offset,) = _U32.unpack_from(trailer, 0)
        (footer_crc,) = _U32.unpack_from(trailer, 4)
        footer_length = size - _TRAILER_SIZE - footer_offset
        if footer_offset < _HEADER_SIZE or footer_length < 8:
            raise SegmentCorruption(
                f"{path}: footer offset {footer_offset} out of range")
        handle.seek(footer_offset)
        footer = handle.read(footer_length)
        if len(footer) != footer_length:
            raise SegmentCorruption(f"{path}: truncated segment footer")
        if zlib.crc32(footer) != footer_crc:
            raise SegmentCorruption(
                f"{path}: segment footer checksum mismatch — the footer "
                f"bytes are damaged; rebuild the segment")
        position = 0
        (meta_length,) = _U32.unpack_from(footer, position)
        position += 4
        if position + meta_length > len(footer):
            raise SegmentCorruption(f"{path}: footer meta overruns footer")
        try:
            self.meta = json.loads(
                footer[position:position + meta_length].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SegmentCorruption(
                f"{path}: segment meta is not valid JSON: {exc}") from exc
        position += meta_length
        (page_count,) = _U32.unpack_from(footer, position)
        position += 4
        needed = page_count * _DIR_ENTRY.size + 4
        if position + needed > len(footer):
            raise SegmentCorruption(
                f"{path}: page directory overruns footer "
                f"({page_count} pages)")
        self._directory = []
        for _ in range(page_count):
            self._directory.append(_DIR_ENTRY.unpack_from(footer, position))
            position += _DIR_ENTRY.size
        (self.num_records,) = _U32.unpack_from(footer, position)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._directory)

    def page_of(self, key: int) -> int | None:
        """Directory bisect: page number that could hold ``key``."""
        position = bisect_right(self._first_keys, key) - 1
        if position < 0:
            return None
        if key > self._directory[position][1]:  # past the page's last key
            return None
        return position

    def get(self, key: int) -> bytes | None:
        """Point lookup: bisect the directory, read exactly one page."""
        number = self.page_of(key)
        if number is None:
            return None
        records = self.pool.page((0, number))
        position = bisect_right(records, key,
                                key=lambda record: record[0]) - 1
        if position >= 0 and records[position][0] == key:
            return records[position][1]
        return None

    def get_many(self, keys: Iterable[int]) -> Iterator[tuple[int, bytes]]:
        """Sorted multi-get: reads each touched page once (readv-style).

        ``keys`` must be sorted ascending; absent keys are skipped.
        """
        current_page = -1
        records: list[tuple[int, bytes]] = []
        index: dict[int, bytes] = {}
        for key in keys:
            number = self.page_of(key)
            if number is None:
                continue
            if number != current_page:
                records = self.pool.page((0, number))
                index = dict(records)
                current_page = number
            value = index.get(key)
            if value is not None:
                yield key, value

    def iter_all(self) -> Iterator[tuple[int, bytes]]:
        """Every record in key order, one page resident at a time."""
        for number in range(len(self._directory)):
            yield from self.pool.page((0, number))

    def keys_in_page(self, number: int) -> tuple[int, int]:
        """(first_key, last_key) of page ``number`` (directory only)."""
        entry = self._directory[number]
        return entry[0], entry[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Segment({self.path!r}, records={self.num_records}, "
                f"pages={self.num_pages})")
