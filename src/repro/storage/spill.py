"""Spill-path construction: bounded-RAM external runs merged into segments.

Partition refinement assigns every data node a block id; materialising
the extents of a large graph all at once is exactly the in-RAM comfort
zone ROADMAP item 3 retires.  :class:`SpillSorter` accumulates
``(block, oid)`` pairs under a byte budget (``REPRO_STORAGE_BUDGET``),
spilling sorted struct-packed runs to disk whenever the buffer would
exceed it, and merges the runs back (``heapq.merge`` over bounded-chunk
readers) into one globally sorted stream — which the builders group by
block, pack through ``Extent.from_sorted`` (the merge output is already
sorted and deduplicated), and write into an immutable
:class:`~repro.storage.segment.Segment`.

The budget governs the *data-plane working set*: the pair buffer, the
per-run merge read chunks, the largest single extent being assembled,
and the open segment page.  ``OocBuildReport.peak_tracked_bytes``
records the high-water mark of exactly that sum; process RSS is
reported separately by the bench (the interpreter baseline dwarfs any
small test budget and is not what the pager controls — see
``docs/storage.md``).
"""

from __future__ import annotations

import hashlib
import heapq
import os
import struct
import tempfile
import time
from array import array
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any

from repro.core.extents import Extent
from repro.indexes.partition import kbisimulation_blocks, kbisimulation_levels
from repro.obs import trace as _trace
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.segment import SegmentWriter

if TYPE_CHECKING:
    from repro.graph.datagraph import DataGraph
    from repro.storage.segment import Segment

#: Environment knob: spill budget in bytes for the construction path.
BUDGET_ENV = "REPRO_STORAGE_BUDGET"
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024

_PAIR = struct.Struct("<II")
#: Upper bound on pairs per merge read chunk; the effective chunk size
#: shrinks so that all open runs together stay under ~half the budget.
MAX_CHUNK_PAIRS = 2048
MIN_CHUNK_PAIRS = 16


def budget_from_env(default: int = DEFAULT_BUDGET_BYTES) -> int:
    raw = os.environ.get(BUDGET_ENV, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{BUDGET_ENV} must be an integer byte count, got {raw!r}"
        ) from exc
    if value < 4096:
        raise ValueError(f"{BUDGET_ENV} must be >= 4096 bytes, got {value}")
    return value


class SpillSorter:
    """External sort of ``(key, value)`` u32 pairs under a byte budget.

    ``add`` pairs in any order; ``merge`` yields them sorted (stable
    duplicates preserved).  The in-memory buffer is bounded: whenever
    its packed size would exceed ``budget_bytes`` it is sorted and
    written to a run file, so construction RAM stays ~budget no matter
    how many pairs flow through.
    """

    def __init__(self, budget_bytes: int | None = None,
                 tmpdir: str | None = None) -> None:
        self.budget_bytes = budget_bytes if budget_bytes is not None \
            else budget_from_env()
        if self.budget_bytes < 4096:
            raise ValueError("budget_bytes must be >= 4096")
        self._buffer: list[tuple[int, int]] = []
        self._buffer_capacity = max(64, self.budget_bytes // _PAIR.size)
        self._owned_tmpdir: tempfile.TemporaryDirectory | None = None
        if tmpdir is None:
            self._owned_tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-spill-")
            tmpdir = self._owned_tmpdir.name
        self._tmpdir = tmpdir
        self._runs: list[str] = []
        self.pairs = 0
        self.spills = 0
        #: High-water mark of the buffer + merge working set, in bytes.
        self.peak_bytes = 0

    @property
    def runs(self) -> int:
        return len(self._runs)

    def buffer_bytes(self) -> int:
        return len(self._buffer) * _PAIR.size

    def chunk_pairs(self) -> int:
        """Pairs per merge read chunk, sized so all runs fit ~budget/2."""
        if not self._runs:
            return MAX_CHUNK_PAIRS
        fair = self.budget_bytes // (2 * _PAIR.size * len(self._runs))
        return max(MIN_CHUNK_PAIRS, min(MAX_CHUNK_PAIRS, fair))

    def merge_bytes(self) -> int:
        """Merge-time working set: one read chunk per run."""
        return len(self._runs) * self.chunk_pairs() * _PAIR.size

    def _note_peak(self, extra: int = 0) -> None:
        used = self.buffer_bytes() + extra
        if used > self.peak_bytes:
            self.peak_bytes = used

    def add(self, key: int, value: int) -> None:
        self._buffer.append((key, value))
        self.pairs += 1
        if len(self._buffer) >= self._buffer_capacity:
            self._note_peak()
            self._spill()

    def _spill(self) -> None:
        if not self._buffer:
            return
        tracer = _trace.TRACER
        span = tracer.span("spill.run_write", pairs=len(self._buffer)) \
            if tracer.enabled else _trace.NULL_SPAN
        with span:
            self._buffer.sort()
            path = os.path.join(self._tmpdir,
                                f"run-{len(self._runs):05d}.pairs")
            with open(path, "wb") as out:
                chunk: list[int] = []
                for key, value in self._buffer:
                    chunk.append(key)
                    chunk.append(value)
                    if len(chunk) >= 2 * MAX_CHUNK_PAIRS:
                        out.write(struct.pack(f"<{len(chunk)}I", *chunk))
                        chunk = []
                if chunk:
                    out.write(struct.pack(f"<{len(chunk)}I", *chunk))
            self._runs.append(path)
            self._buffer = []
            self.spills += 1

    def _iter_run(self, path: str) -> Iterator[tuple[int, int]]:
        chunk_bytes = self.chunk_pairs() * _PAIR.size
        with open(path, "rb") as source:
            while True:
                data = source.read(chunk_bytes)
                if not data:
                    break
                count = len(data) // 4
                flat = struct.unpack(f"<{count}I", data)
                for position in range(0, count, 2):
                    yield flat[position], flat[position + 1]

    def merge(self) -> "Iterator[tuple[int, int]]":
        """All pairs in sorted order; bounded-chunk run readers."""
        self._buffer.sort()
        self._note_peak(self.merge_bytes())
        streams = [self._iter_run(path) for path in self._runs]
        streams.append(iter(self._buffer))
        return heapq.merge(*streams)

    def close(self) -> None:
        self._buffer = []
        self._runs = []
        if self._owned_tmpdir is not None:
            self._owned_tmpdir.cleanup()
            self._owned_tmpdir = None

    def __enter__(self) -> "SpillSorter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


@dataclass
class OocBuildReport:
    """What one spill-path segment build did and cost."""

    path: str
    kind: str
    records: int = 0
    pairs: int = 0
    spills: int = 0
    runs: int = 0
    budget_bytes: int = 0
    #: High-water mark of the tracked data-plane working set (pair
    #: buffer + merge chunks + largest extent under assembly + open
    #: segment page).
    peak_tracked_bytes: int = 0
    #: Total extent payload bytes written (the "dataset size" the
    #: budget-ratio criterion compares against).
    payload_bytes: int = 0
    seconds: float = 0.0
    digest: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def peak_ratio(self) -> float:
        if not self.budget_bytes:
            return 0.0
        return self.peak_tracked_bytes / self.budget_bytes

    @property
    def dataset_ratio(self) -> float:
        """Extent payload bytes over the budget (>= 4 forces real spills)."""
        if not self.budget_bytes:
            return 0.0
        return self.payload_bytes / self.budget_bytes


def extents_digest(
        groups: "Iterable[tuple[int, Iterable[int]]]") -> str:
    """SHA-256 over ``(dense_key, sorted oids)`` groups.

    ``groups`` yields ``(key, iterable-of-ascending-oids)`` in key
    order; the digest is over the canonical text rendering, so the
    in-RAM and spill-path builders land on identical digests exactly
    when they produce identical extents in identical order.
    """
    digest = hashlib.sha256()
    for key, oids in groups:
        digest.update(b"%d:" % key)
        digest.update(",".join(str(oid) for oid in oids).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _grouped(
        pairs: "Iterable[tuple[int, int]]") -> Iterator[tuple[int, array]]:
    """Group a sorted pair stream by key; dedupes values per group."""
    current = -1
    values = array("i")
    for key, value in pairs:
        if key != current:
            if current >= 0:
                yield current, values
            current = key
            values = array("i")
        if not values or values[-1] != value:
            values.append(value)
    if current >= 0:
        yield current, values


def _pack_oids(values: array) -> bytes:
    return struct.pack(f"<{len(values)}I", *values)


def _block_meta(graph: "DataGraph", blocks: list[int],
                dense_of: dict[int, int],
                label_ids: dict[str, int]) -> dict:
    """Skeleton meta for one partition level: labels, adjacency, directory.

    All O(index size), kept in the segment footer: the skeleton is what
    a query navigates (small), the extents are what it avoids loading
    (large) — the paper's "loaded selectively and incrementally" split.
    """
    num_blocks = len(dense_of)
    label_of: list[int] = [-1] * num_blocks
    children: list[set[int]] = [set() for _ in range(num_blocks)]
    node_of = [dense_of[block] for block in blocks]
    for oid, nid in enumerate(node_of):
        if label_of[nid] < 0:
            label_of[nid] = label_ids[graph.labels[oid]]
    rows = graph.child_rows()
    for oid in range(graph.num_nodes):
        up = node_of[oid]
        row = rows[oid]
        for child in row:
            children[up].add(node_of[child])
    by_label: dict[str, list[int]] = {}
    for nid, label_id in enumerate(label_of):
        by_label.setdefault(str(label_id), []).append(nid)
    return {
        "num_nodes": num_blocks,
        "label_of": label_of,
        "children": [sorted(kids) for kids in children],
        "by_label": by_label,
        "root": node_of[graph.root],
    }


def build_ak_segment(graph: "DataGraph", k: int, path: str, *,
                     budget_bytes: int | None = None,
                     page_size: int = DEFAULT_PAGE_SIZE,
                     tmpdir: str | None = None,
                     opener: "Callable[..., IO[bytes]]" = open,
                     ) -> OocBuildReport:
    """Build the A(k) extent segment via the spill path.

    The block assignment itself is O(n) ints and rides the graph's own
    footprint; the extent payload — what actually dominates index size —
    flows through :class:`SpillSorter` under ``budget_bytes`` and never
    materialises at once.  Record keys are the dense index-node ids the
    in-RAM ``AkIndex`` would assign (blocks sorted ascending), so the
    two builds are digest-comparable record for record.
    """
    started = time.perf_counter()
    blocks = kbisimulation_blocks(graph, k)
    dense_of = {block: dense
                for dense, block in enumerate(sorted(set(blocks)))}
    label_ids = {label: position
                 for position, label in enumerate(sorted(graph.alphabet()))}
    meta = {
        "kind": "ak-extents",
        "k": k,
        "labels": sorted(graph.alphabet()),
        "levels": [_block_meta(graph, blocks, dense_of, label_ids)],
    }
    report = OocBuildReport(path=path, kind=f"A({k})")
    _write_extent_segment(report, [(blocks, dense_of, 0)], meta, path,
                          budget_bytes=budget_bytes, page_size=page_size,
                          tmpdir=tmpdir, opener=opener)
    report.seconds = time.perf_counter() - started
    report.meta = {"k": k, "num_blocks": len(dense_of)}
    return report


def build_hierarchy_segment(graph: "DataGraph", k: int, path: str, *,
                            budget_bytes: int | None = None,
                            page_size: int = DEFAULT_PAGE_SIZE,
                            tmpdir: str | None = None,
                            opener: "Callable[..., IO[bytes]]" = open,
                            ) -> OocBuildReport:
    """Build the M*(k) resolution hierarchy I_0..I_k via the spill path.

    M*(k) draws its components from the k-bisimulation levels (I_0 at
    the coarse end, A(k) at the fine end); this writes every level's
    extents into one segment under composite keys ``level * stride +
    dense_nid`` (stride = ``graph.num_nodes``, so keys stay ascending
    level-major and fit u32 for any graph the u32 record format holds).
    """
    started = time.perf_counter()
    levels = kbisimulation_levels(graph, k)
    level_specs = []
    level_metas = []
    label_ids = {label: position
                 for position, label in enumerate(sorted(graph.alphabet()))}
    for level, blocks in enumerate(levels):
        dense_of = {block: dense
                    for dense, block in enumerate(sorted(set(blocks)))}
        level_specs.append((blocks, dense_of, level))
        level_metas.append(_block_meta(graph, blocks, dense_of, label_ids))
    meta = {
        "kind": "mstar-hierarchy",
        "k": k,
        "stride": graph.num_nodes,
        "labels": sorted(graph.alphabet()),
        "levels": level_metas,
    }
    report = OocBuildReport(path=path, kind=f"M*({k})")
    _write_extent_segment(report, level_specs, meta, path,
                          budget_bytes=budget_bytes, page_size=page_size,
                          tmpdir=tmpdir, opener=opener)
    report.seconds = time.perf_counter() - started
    report.meta = {"k": k,
                   "blocks_per_level": [m["num_nodes"] for m in level_metas]}
    return report


def _write_extent_segment(
        report: OocBuildReport,
        level_specs: "list[tuple[list[int], dict[int, int], int]]",
        meta: dict, path: str, *, budget_bytes: int | None,
        page_size: int, tmpdir: str | None,
        opener: "Callable[..., IO[bytes]]") -> None:
    stride = meta.get("stride", 0)
    digest = hashlib.sha256()
    with SpillSorter(budget_bytes, tmpdir=tmpdir) as sorter:
        for blocks, dense_of, level in level_specs:
            base = level * stride
            for oid, block in enumerate(blocks):
                sorter.add(base + dense_of[block], oid)
        writer = SegmentWriter(path, page_size=page_size, meta=meta,
                               opener=opener)
        try:
            max_group = 0
            for key, oids in _grouped(sorter.merge()):
                payload = _pack_oids(oids)
                writer.add(key, payload)
                digest.update(b"%d:" % key)
                digest.update(",".join(str(oid) for oid in oids)
                              .encode("ascii"))
                digest.update(b"\n")
                report.payload_bytes += len(payload)
                group_bytes = len(oids) * 4
                if group_bytes > max_group:
                    max_group = group_bytes
            sorter._note_peak(sorter.merge_bytes() + max_group
                              + writer.buffered_bytes)
            writer.finish()
        except BaseException:
            writer.abort()
            raise
        report.records = writer.records
        report.pairs = sorter.pairs
        report.spills = sorter.spills
        report.runs = sorter.runs
        report.budget_bytes = sorter.budget_bytes
        report.peak_tracked_bytes = sorter.peak_bytes
    report.digest = digest.hexdigest()


# ----------------------------------------------------------------------
# In-RAM reference digests (what the spill path must reproduce)
# ----------------------------------------------------------------------
def inram_ak_digest(index: Any) -> str:
    """Digest of an in-RAM ``AkIndex`` in the segment's key order.

    ``IndexGraph.from_blocks`` assigns dense nids over blocks sorted
    ascending — the same order the spill merge yields — so the digests
    agree iff the extents agree.
    """
    graph_index = getattr(index, "index", index)  # AkIndex wraps IndexGraph
    return extents_digest(
        (nid, list(graph_index.nodes[nid].extent))
        for nid in sorted(graph_index.nodes))


def inram_hierarchy_digest(graph: "DataGraph", k: int) -> str:
    """Digest of the in-RAM level extents, composite-keyed like the segment."""
    levels = kbisimulation_levels(graph, k)
    stride = graph.num_nodes

    def groups() -> Iterator[tuple[int, list[int]]]:
        for level, blocks in enumerate(levels):
            extents: dict[int, list[int]] = {}
            for oid, block in enumerate(blocks):
                extents.setdefault(block, []).append(oid)
            dense_of = {block: dense
                        for dense, block in enumerate(sorted(extents))}
            for block in sorted(extents):
                yield level * stride + dense_of[block], extents[block]

    return extents_digest(groups())


# ----------------------------------------------------------------------
# CSR adjacency spilled to a segment (graph/compact.py's page feed)
# ----------------------------------------------------------------------
def build_adjacency_segment(graph: "DataGraph", path: str, *,
                            page_size: int = DEFAULT_PAGE_SIZE,
                            opener: "Callable[..., IO[bytes]]" = open,
                            ) -> OocBuildReport:
    """Write the frozen CSR adjacency as a segment: key=oid, value=row.

    Row payloads come from ``CompactAdjacency.row_bytes`` (pinned
    little-endian), so a validation walk over a graph too big for RAM
    can page in exactly the rows it touches (``PagedAdjacency``).
    """
    from repro.graph.compact import CompactAdjacency

    started = time.perf_counter()
    adjacency = graph.child_rows()
    if not isinstance(adjacency, CompactAdjacency):
        raise ValueError("adjacency segments need a frozen graph "
                         "(call graph.freeze() first)")
    report = OocBuildReport(path=path, kind="csr-adjacency")
    writer = SegmentWriter(path, page_size=page_size,
                           meta={"kind": "csr-adjacency",
                                 "num_nodes": graph.num_nodes,
                                 "root": graph.root},
                           opener=opener)
    try:
        for oid in range(graph.num_nodes):
            payload = adjacency.row_bytes(oid)
            writer.add(oid, payload)
            report.payload_bytes += len(payload)
        writer.finish()
    except BaseException:
        writer.abort()
        raise
    report.records = writer.records
    report.seconds = time.perf_counter() - started
    return report


class PagedAdjacency:
    """Child rows served from an adjacency segment, one page at a time.

    Quacks like ``graph.child_rows()`` for row access: ``rows[oid]``
    returns the row as a ``list[int]``, touching only the segment page
    that holds it.  Physical I/O shows up in ``segment.pool``.
    """

    def __init__(self, segment: "Segment") -> None:
        if segment.meta.get("kind") != "csr-adjacency":
            raise ValueError(
                f"{segment.path} is not an adjacency segment "
                f"(kind={segment.meta.get('kind')!r})")
        self.segment = segment
        self.num_nodes = int(segment.meta["num_nodes"])

    def __len__(self) -> int:
        return self.num_nodes

    def __getitem__(self, oid: int) -> list[int]:
        if oid < 0 or oid >= self.num_nodes:
            raise IndexError(oid)
        payload = self.segment.get(oid)
        if payload is None:
            raise ValueError(
                f"adjacency segment {self.segment.path} has no row for "
                f"oid {oid}")
        from repro.graph.compact import row_from_bytes

        return row_from_bytes(payload)
