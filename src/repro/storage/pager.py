"""Page file and buffer pool for the disk-resident index.

``PageFile`` lays index-node records out in fixed-budget pages and reads
a page's records back on demand; ``BufferPool`` keeps a bounded LRU set
of parsed pages and counts physical reads versus hits — the I/O metric
the disk-resident benches report.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage.serialization import decode_index_node

DEFAULT_PAGE_SIZE = 4096

_M_READS = _metrics.REGISTRY.counter(
    "pager_reads_total", "physical page reads (parsed successfully)")
_M_CORRUPT = _metrics.REGISTRY.counter(
    "pager_corrupt_pages_total", "page reads rejected as corrupt")
_M_HITS = _metrics.REGISTRY.counter(
    "pager_pool_hits_total", "page requests served from the buffer pool")
_M_MISSES = _metrics.REGISTRY.counter(
    "pager_pool_misses_total", "page requests that went to disk")


@dataclass(frozen=True)
class PageRef:
    """Location of one page inside the index file."""

    offset: int
    length: int


class PageFile:
    """Random-access page reader over an on-disk index payload.

    ``pages`` maps ``(component, page_number) -> PageRef``; every page
    holds whole index-node records, parsed into ``nid -> record`` dicts
    on read.
    """

    def __init__(self, path: str,
                 pages: dict[tuple[int, int], PageRef]) -> None:
        self.path = path
        self.pages = pages
        self._handle = open(path, "rb")
        #: Physical page reads performed (monotone).
        self.reads = 0
        #: Serialises seek+read pairs and the ``reads`` counter — the
        #: file handle's position is shared state, so two concurrent
        #: readers would otherwise interleave seeks and parse garbage.
        self._lock = threading.Lock()

    def read_page(self, key: tuple[int, int]) -> dict[int, dict]:
        """Read and parse one page; one physical read.

        Raises ``ValueError`` naming the page key when the page bytes do
        not decode as whole index-node records.  ``reads`` counts only
        successfully parsed pages, so a corrupt page never inflates the
        I/O metric while returning nothing.
        """
        tracer = _trace.TRACER
        span = tracer.span("pager.read_page", component=key[0],
                           page=key[1]) if tracer.enabled \
            else _trace.NULL_SPAN
        with span:
            ref = self.pages[key]
            with self._lock:
                self._handle.seek(ref.offset)
                data = self._handle.read(ref.length)
            if len(data) != ref.length:
                _M_CORRUPT.inc()
                raise ValueError(f"truncated page {key} in {self.path}")
            records: dict[int, dict] = {}
            offset = 0
            try:
                while offset < len(data):
                    record, offset = decode_index_node(data, offset)
                    records[record["nid"]] = record
            except (struct.error, ValueError, IndexError) as exc:
                _M_CORRUPT.inc()
                raise ValueError(
                    f"corrupt page {key} in {self.path}: {exc}") from exc
            with self._lock:
                self.reads += 1
            _M_READS.inc()
            span.tag(records=len(records))
            return records

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class BufferPool:
    """Bounded LRU cache of parsed pages with hit/read accounting.

    Safe for concurrent readers (the sharded service points several
    shard engines at one pool): one lock covers the lookup, the LRU
    reorder, the miss fill, and the counters, so under any interleaving
    ``hits + misses == requests``, every miss is exactly one physical
    read, and the pool never exceeds its capacity.  Holding the lock
    across the physical read also means concurrent requests for the
    *same* cold page collapse into one read instead of racing to fill
    the slot.
    """

    def __init__(self, file: PageFile, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self.file = file
        self.capacity = capacity_pages
        self._cached: OrderedDict[tuple[int, int], dict[int, dict]] = \
            OrderedDict()
        #: Logical page requests served from the pool.
        self.hits = 0
        #: Logical page requests that went to disk.
        self.misses = 0
        self._lock = threading.Lock()

    @property
    def reads(self) -> int:
        """Physical page reads (cache misses) so far."""
        return self.file.reads

    def page(self, key: tuple[int, int]) -> dict[int, dict]:
        """Fetch one page through the pool."""
        with self._lock:
            cached = self._cached.get(key)
            if cached is not None:
                self._cached.move_to_end(key)
                self.hits += 1
                _M_HITS.inc()
                return cached
            self.misses += 1
            _M_MISSES.inc()
            records = self.file.read_page(key)
            self._cached[key] = records
            if len(self._cached) > self.capacity:
                self._cached.popitem(last=False)
            return records

    def cached_pages(self) -> int:
        """Pages currently resident in the pool."""
        with self._lock:
            return len(self._cached)

    def reset_stats(self) -> None:
        """Zero the counters (the cache contents stay warm)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.file.reads = 0

    def __repr__(self) -> str:
        with self._lock:
            return (f"BufferPool(capacity={self.capacity}, "
                    f"cached={len(self._cached)}, reads={self.reads}, "
                    f"hits={self.hits}, misses={self.misses})")
