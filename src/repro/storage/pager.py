"""Page file and buffer pool for the disk-resident index.

``PageFile`` lays index-node records out in fixed-budget pages and reads
a page's records back on demand; ``BufferPool`` keeps a bounded LRU set
of parsed pages and counts physical reads versus hits — the I/O metric
the disk-resident benches report.

PR 9 extensions (the out-of-core data plane, see ``docs/storage.md``):

* **mmap-backed reads** — a ``PageFile`` opened with ``use_mmap=True``
  slices a read-only memory map instead of seek+read, so concurrent
  readers need no shared-file-position lock on the data path (the
  counters stay lock-protected).  Segments opened fresh default to it;
  the legacy index path keeps buffered reads unless
  ``REPRO_STORAGE_MMAP=1`` asks otherwise.
* **page checksums** — when the caller supplies per-page CRCs (the
  segment format stores them in its footer), every physical read is
  verified before decoding; a mismatch raises a ``ValueError`` naming
  the page key and never returns bytes.
* **pin counts** — ``BufferPool.pin``/``unpin`` (or the ``pinned``
  context manager) keep a page resident; eviction skips pinned pages,
  overshooting capacity rather than dropping a page a reader holds.
* **admission policy** — ``admission="scan"`` admits first-touch pages
  on probation (next in eviction order) so a one-pass scan cannot wipe
  the hot set; a page re-admitted soon after eviction (tracked in a
  small ghost list) goes straight to the protected end.
* **eviction epoch** — ``BufferPool.epoch`` advances once per eviction;
  ``hold_epoch()`` blocks evictions for its duration, which is how
  pinned serving snapshots hold their page epoch steady.
* **prefetch accounting** — ``prefetch(key)`` loads a page without
  counting a demand miss; later demand hits on prefetched pages are
  counted separately so the background prefetcher's usefulness is
  measurable (``pager_prefetch_*`` metrics).
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
import zlib
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.storage.serialization import decode_index_node

DEFAULT_PAGE_SIZE = 4096

_M_READS = _metrics.REGISTRY.counter(
    "pager_reads_total", "physical page reads (parsed successfully)")
_M_CORRUPT = _metrics.REGISTRY.counter(
    "pager_corrupt_pages_total", "page reads rejected as corrupt")
_M_HITS = _metrics.REGISTRY.counter(
    "pager_pool_hits_total", "page requests served from the buffer pool")
_M_MISSES = _metrics.REGISTRY.counter(
    "pager_pool_misses_total", "page requests that went to disk")
_M_EVICTIONS = _metrics.REGISTRY.counter(
    "pager_evictions_total", "pages evicted from the buffer pool")
_M_PREFETCHES = _metrics.REGISTRY.counter(
    "pager_prefetch_pages_total", "pages loaded by prefetch")
_M_PREFETCH_HITS = _metrics.REGISTRY.counter(
    "pager_prefetch_hits_total",
    "demand requests served by a previously prefetched page")


def _mmap_default() -> bool:
    return os.environ.get("REPRO_STORAGE_MMAP", "") not in ("", "0")


def decode_index_page(data: bytes) -> dict[int, dict]:
    """Default page decoder: whole index-node records -> nid -> record."""
    records: dict[int, dict] = {}
    offset = 0
    while offset < len(data):
        record, offset = decode_index_node(data, offset)
        records[record["nid"]] = record
    return records


@dataclass(frozen=True)
class PageRef:
    """Location of one page inside the index file."""

    offset: int
    length: int


class PageFile:
    """Random-access page reader over an on-disk index payload.

    ``pages`` maps a page key (``(component, page_number)`` for the
    legacy disk index, ``(0, page_number)`` for segments) to a
    :class:`PageRef`.  ``decoder`` turns raw page bytes into the parsed
    form the pool caches (default: whole index-node records parsed into
    ``nid -> record`` dicts); ``checksums`` maps page keys to expected
    CRC-32s, verified before decoding.  ``handle`` lets tests inject a
    fault-wrapped file object.
    """

    def __init__(self, path: str, pages: dict[tuple[int, int], PageRef],
                 *, decoder: "Callable[[bytes], Any] | None" = None,
                 checksums: "dict[tuple[int, int], int] | None" = None,
                 use_mmap: bool | None = None,
                 handle: Any = None) -> None:
        self.path = path
        self.pages = pages
        self._decoder = decoder if decoder is not None else decode_index_page
        self._checksums = checksums if checksums is not None else {}
        self._handle = handle if handle is not None else open(path, "rb")
        self._mmap: mmap.mmap | None = None
        if use_mmap is None:
            use_mmap = _mmap_default()
        if use_mmap:
            try:
                self._mmap = mmap.mmap(self._handle.fileno(), 0,
                                       access=mmap.ACCESS_READ)
            except (ValueError, OSError, AttributeError):
                self._mmap = None  # empty file / pipe / fake handle
        #: Physical page reads performed (monotone).
        self.reads = 0
        #: Serialises seek+read pairs and the ``reads`` counter — the
        #: buffered file handle's position is shared state, so two
        #: concurrent readers would otherwise interleave seeks and parse
        #: garbage.  The mmap path slices without seeking but keeps the
        #: counter update under the same lock.
        self._lock = threading.Lock()

    @property
    def mmapped(self) -> bool:
        """Whether page reads slice a memory map (no shared seek)."""
        return self._mmap is not None

    def _read_raw(self, ref: PageRef) -> bytes:
        if self._mmap is not None:
            return self._mmap[ref.offset:ref.offset + ref.length]
        with self._lock:
            self._handle.seek(ref.offset)
            return self._handle.read(ref.length)

    def read_page(self, key: tuple[int, int]) -> Any:
        """Read, verify, and parse one page; one physical read.

        Raises ``ValueError`` naming the page key when the read comes up
        short, the stored checksum mismatches, or the page bytes do not
        decode as whole records.  ``reads`` counts only successfully
        parsed pages, so a corrupt page never inflates the I/O metric
        while returning nothing.
        """
        tracer = _trace.TRACER
        span = tracer.span("pager.read_page", component=key[0],
                           page=key[1]) if tracer.enabled \
            else _trace.NULL_SPAN
        with span:
            ref = self.pages[key]
            data = self._read_raw(ref)
            if len(data) != ref.length:
                _M_CORRUPT.inc()
                raise ValueError(f"truncated page {key} in {self.path}")
            expected = self._checksums.get(key)
            if expected is not None:
                computed = zlib.crc32(data)
                if computed != expected:
                    _M_CORRUPT.inc()
                    raise ValueError(
                        f"corrupt page {key} in {self.path}: checksum "
                        f"mismatch (stored 0x{expected:08x}, computed "
                        f"0x{computed:08x})")
            try:
                records = self._decoder(data)
            except (struct.error, ValueError, IndexError, KeyError) as exc:
                _M_CORRUPT.inc()
                raise ValueError(
                    f"corrupt page {key} in {self.path}: {exc}") from exc
            with self._lock:
                self.reads += 1
            _M_READS.inc()
            try:
                span.tag(records=len(records))
            except TypeError:
                pass  # decoder may return an unsized object
            return records

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._handle.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class BufferPool:
    """Bounded LRU cache of parsed pages with hit/read accounting.

    Safe for concurrent readers (the sharded service points several
    shard engines at one pool): one lock covers the lookup, the LRU
    reorder, the miss fill, and the counters, so under any interleaving
    ``hits + misses == requests``, every miss is exactly one physical
    read, and the pool never exceeds its capacity while unpinned pages
    remain.  Holding the lock across the physical read also means
    concurrent requests for the *same* cold page collapse into one read
    instead of racing to fill the slot.

    Pinned pages (see :meth:`pin`) are never evicted: when every
    resident page is pinned the pool overshoots capacity (counted in
    ``pin_overflows``) rather than invalidating a page a reader holds.
    """

    #: Ghost-list length, as a multiple of capacity (scan admission).
    GHOST_FACTOR = 4

    def __init__(self, file: PageFile, capacity_pages: int,
                 *, admission: str = "lru") -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        if admission not in ("lru", "scan"):
            raise ValueError(f"unknown admission policy {admission!r}")
        self.file = file
        self.capacity = capacity_pages
        self.admission = admission
        self._cached: OrderedDict[tuple[int, int], object] = OrderedDict()
        #: Recently evicted keys (scan admission promotes re-admissions).
        self._ghosts: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._pins: dict[tuple[int, int], int] = {}
        self._prefetched: set[tuple[int, int]] = set()
        #: Logical page requests served from the pool.
        self.hits = 0
        #: Logical page requests that went to disk.
        self.misses = 0
        #: Pages loaded by :meth:`prefetch` (not demand misses).
        self.prefetches = 0
        #: Demand requests that found a prefetched page resident.
        self.prefetch_hits = 0
        #: Pages dropped to make room (monotone).
        self.evictions = 0
        #: Times capacity was overshot because every page was pinned.
        self.pin_overflows = 0
        #: Advances once per eviction; constant while an epoch hold or a
        #: pin keeps the resident set stable.
        self.epoch = 0
        self._evict_blocked = 0
        self._miss_listener = None
        self._lock = threading.Lock()

    @property
    def reads(self) -> int:
        """Physical page reads (cache misses + prefetches) so far."""
        return self.file.reads

    # ------------------------------------------------------------------
    # Core paths (call with the lock held)
    # ------------------------------------------------------------------
    def _admit(self, key: tuple[int, int], records: Any) -> None:
        self._cached[key] = records
        if self.admission == "scan" and key not in self._ghosts:
            # First touch: probation — next in eviction order unless it
            # is referenced again while resident.
            self._cached.move_to_end(key, last=False)
        self._ghosts.pop(key, None)
        self._evict_for_space()

    def _evict_for_space(self) -> None:
        if self._evict_blocked:
            return
        while len(self._cached) > self.capacity:
            victim = None
            for key in self._cached:
                if not self._pins.get(key):
                    victim = key
                    break
            if victim is None:
                # Everything resident is pinned; overshoot rather than
                # evict under a pin.
                self.pin_overflows += 1
                return
            del self._cached[victim]
            self._prefetched.discard(victim)
            self._ghosts[victim] = None
            while len(self._ghosts) > self.GHOST_FACTOR * self.capacity:
                self._ghosts.popitem(last=False)
            self.evictions += 1
            self.epoch += 1
            _M_EVICTIONS.inc()

    def _page_locked(self, key: tuple[int, int]) -> Any:
        cached = self._cached.get(key)
        if cached is not None:
            self._cached.move_to_end(key)
            self.hits += 1
            _M_HITS.inc()
            if key in self._prefetched:
                self._prefetched.discard(key)
                self.prefetch_hits += 1
                _M_PREFETCH_HITS.inc()
            return cached
        self.misses += 1
        _M_MISSES.inc()
        records = self.file.read_page(key)
        self._admit(key, records)
        listener = self._miss_listener
        if listener is not None:
            listener(key)
        return records

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def page(self, key: tuple[int, int]) -> Any:
        """Fetch one page through the pool."""
        with self._lock:
            return self._page_locked(key)

    def pin(self, key: tuple[int, int]) -> Any:
        """Fetch one page and pin it resident; returns the parsed page.

        Balance every ``pin`` with :meth:`unpin` (or use the
        :meth:`pinned` context manager).  The pin count is registered
        *before* the fetch, all under one lock acquisition: a miss fill
        that overflows capacity must never pick the page being pinned
        as its own eviction victim.
        """
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1
            try:
                return self._page_locked(key)
            except BaseException:
                self._unpin_locked(key)
                raise

    def _unpin_locked(self, key: tuple[int, int]) -> None:
        count = self._pins.get(key, 0)
        if count <= 0:
            raise ValueError(f"page {key} is not pinned")
        if count == 1:
            del self._pins[key]
        else:
            self._pins[key] = count - 1
        self._evict_for_space()

    def unpin(self, key: tuple[int, int]) -> None:
        with self._lock:
            self._unpin_locked(key)

    @contextmanager
    def pinned(self, key: tuple[int, int]) -> Iterator[Any]:
        """Context manager: fetch + pin ``key``, unpin on exit."""
        records = self.pin(key)
        try:
            yield records
        finally:
            self.unpin(key)

    def pin_count(self, key: tuple[int, int]) -> int:
        with self._lock:
            return self._pins.get(key, 0)

    def pinned_pages(self) -> int:
        with self._lock:
            return len(self._pins)

    @contextmanager
    def hold_epoch(self) -> Iterator[int]:
        """Block evictions for the duration; yields the held epoch.

        While any hold is open the resident set only grows, so every
        page read under the hold stays resident and :attr:`epoch` does
        not advance — this is what a pinned serving snapshot wraps
        around its reads (see ``ServingEngine.attach_page_pool``).  On
        release the pool trims back to capacity (one epoch step per
        page dropped).
        """
        with self._lock:
            self._evict_blocked += 1
            held = self.epoch
        try:
            yield held
        finally:
            with self._lock:
                self._evict_blocked -= 1
                if self._evict_blocked == 0:
                    self._evict_for_space()

    def prefetch(self, key: tuple[int, int]) -> bool:
        """Load ``key`` into the pool without counting a demand miss.

        Returns ``True`` when the page was actually loaded.  A corrupt
        page is *not* swallowed silently into the cache: the read error
        is suppressed here (prefetch is advisory), but a later demand
        read of the same page re-reads and raises.
        """
        with self._lock:
            if key in self._cached or key not in self.file.pages:
                return False
        try:
            records = self.file.read_page(key)
        except (ValueError, KeyError, OSError):
            return False
        with self._lock:
            if key in self._cached:
                return False
            self._admit(key, records)
            self._prefetched.add(key)
            self.prefetches += 1
            _M_PREFETCHES.inc()
            return True

    def set_miss_listener(
            self,
            listener: "Callable[[tuple[int, int]], None] | None") -> None:
        """Install a demand-miss callback (``listener(key)``).

        Called with the pool lock held — the listener must only enqueue
        (the background prefetcher's ``note``), never call back into the
        pool synchronously.
        """
        with self._lock:
            self._miss_listener = listener

    def cached_pages(self) -> int:
        """Pages currently resident in the pool."""
        with self._lock:
            return len(self._cached)

    def resident(self, key: tuple[int, int]) -> bool:
        with self._lock:
            return key in self._cached

    def reset_stats(self) -> None:
        """Zero the counters (the cache contents stay warm)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.prefetches = 0
            self.prefetch_hits = 0
            self.evictions = 0
            self.pin_overflows = 0
            self.file.reads = 0

    def __repr__(self) -> str:
        with self._lock:
            return (f"BufferPool(capacity={self.capacity}, "
                    f"cached={len(self._cached)}, reads={self.reads}, "
                    f"hits={self.hits}, misses={self.misses}, "
                    f"pinned={len(self._pins)}, epoch={self.epoch})")
