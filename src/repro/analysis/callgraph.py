"""Project call graph + per-file function summaries for ``repro lint``.

The interprocedural passes follow the paper's own playbook: precompute
structure once, answer the frequent questions cheaply.  Each file is
summarised *independently* into a small JSON-serialisable dict (so the
content-hash cache can persist it), and a :class:`ProjectGraph` is
recomposed from the summaries on every run — recomposition is cheap,
re-parsing is not.

A summary records, per function: parameters, budget-ish parameters, the
calls it makes (receiver chain, import-resolved target, which ``with``
items were lexically held at the call, whether a deadline/budget value
was forwarded), and the ``with`` items themselves (the lock-order pass
classifies them later, against :class:`~repro.analysis.config.LintConfig`
registries, so summaries stay config-independent).

Call resolution is deliberately heuristic but conservative-by-union:

* import-resolved dotted targets match project modules exactly;
* ``self.method`` / ``super().method`` resolve through an approximate
  MRO built from class ``bases`` names across the project;
* other receivers resolve through ``LintConfig.receiver_roles`` — a
  reviewed map from conventional attribute/variable names (``serving``,
  ``clock``, ``pool``, ...) to the classes they hold in this codebase.

Unknown receivers resolve to nothing: the passes stay quiet rather than
guessing, and the reviewed role map is the lever for widening coverage.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

__all__ = [
    "BUDGET_NAME_RE",
    "ProjectGraph",
    "attr_chain",
    "module_name_for",
    "summarize_module",
]

#: Identifier fragment marking a value as a deadline/budget carrier.
BUDGET_NAME_RE = re.compile(r"(timeout|deadline|budget|remaining)",
                            re.IGNORECASE)


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path (``src/`` stripped)."""
    path = relpath.replace("\\", "/")
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    for prefix in ("src/",):
        if path.startswith(prefix):
            path = path[len(prefix):]
    # Site-packages style absolute-ish paths: anchor at the last
    # occurrence of a top-level package we can name; fall back verbatim.
    marker = "/repro/"
    index = path.rfind(marker)
    if index >= 0:
        path = path[index + 1:]
    return path.replace("/", ".")


def attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``super().m`` ->
    ``["super()", "m"]``; anything else -> ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call) and \
            isinstance(current.func, ast.Name) and \
            current.func.id == "super":
        parts.append("super()")
    else:
        return None
    return list(reversed(parts))


def _resolve_import(chain: Sequence[str],
                    aliases: Mapping[str, str]) -> str | None:
    base = aliases.get(chain[0])
    if base is None:
        return None
    return ".".join([base, *chain[1:]])


# ---------------------------------------------------------------------------
# Per-file summaries
# ---------------------------------------------------------------------------


def _param_names(args: ast.arguments) -> list[str]:
    names = [arg.arg for arg in args.posonlyargs]
    names.extend(arg.arg for arg in args.args)
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(arg.arg for arg in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _assigned_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_assigned_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _assigned_names(target.value)
    return []


class _FunctionWalker:
    """Collect calls / withs / budget taint for one function body."""

    def __init__(self, aliases: Mapping[str, str]) -> None:
        self.aliases = aliases
        self.calls: list[dict[str, object]] = []
        self.withs: list[dict[str, object]] = []
        self.budget_locals: set[str] = set()
        self.has_budget_attr = False
        self._with_stack: list[dict[str, object]] = []
        self._loop_depth = 0

    # -- taint ------------------------------------------------------------

    def _tainted(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and (
                    sub.id in self.budget_locals
                    or BUDGET_NAME_RE.search(sub.id)):
                return True
            if isinstance(sub, ast.Attribute) and \
                    BUDGET_NAME_RE.search(sub.attr):
                return True
            if isinstance(sub, ast.Call):
                chain = attr_chain(sub.func)
                if chain and BUDGET_NAME_RE.search(chain[-1]):
                    return True
        return False

    def _seed_taint(self, params: Iterable[str],
                    body: Sequence[ast.stmt]) -> None:
        self.budget_locals = {name for name in params
                              if BUDGET_NAME_RE.search(name)}
        statements = _own_statements(body)
        # Two lexical passes approximate the fixpoint for the common
        # ``budget = deadline - now; arg = budget`` chains.
        for _ in range(2):
            for stmt in statements:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    targets, value = [stmt.target], stmt.value
                elif isinstance(stmt, ast.AugAssign):
                    targets, value = [stmt.target], stmt.value
                if value is None:
                    continue
                names = [name for target in targets
                         for name in _assigned_names(target)]
                if any(BUDGET_NAME_RE.search(name) for name in names) \
                        or self._tainted(value):
                    self.budget_locals.update(names)
        for stmt in statements:
            if isinstance(stmt, ast.AugAssign) and \
                    isinstance(stmt.value, ast.Constant):
                # A counter bump (``stats.timeouts += 1``) records that a
                # timeout *happened*; it does not put a budget in hand.
                continue
            for root in _stmt_exprs(stmt):
                for sub in ast.walk(root):
                    if isinstance(sub, ast.Attribute) and \
                            BUDGET_NAME_RE.search(sub.attr):
                        self.has_budget_attr = True
                        return

    # -- structural walk ---------------------------------------------------

    def walk(self, function: ast.FunctionDef | ast.AsyncFunctionDef,
             budget_params: Sequence[str]) -> None:
        self._seed_taint(_param_names(function.args), function.body)
        self._budget_params = set(budget_params)
        self._walk_block(function.body)

    def _walk_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _held(self) -> list[dict[str, object]]:
        return [{"chain": item["chain"], "call": item["call"]}
                for item in self._with_stack]

    def _record_calls(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            kwargs = [kw.arg for kw in node.keywords
                      if kw.arg is not None]
            passes = any(kw.arg is not None
                         and BUDGET_NAME_RE.search(kw.arg)
                         for kw in node.keywords)
            raw = False
            for value in [*node.args,
                          *[kw.value for kw in node.keywords]]:
                if self._tainted(value):
                    passes = True
                if isinstance(value, ast.Name) and \
                        value.id in self._budget_params:
                    raw = True
            self.calls.append({
                "line": node.lineno,
                "chain": chain,
                "resolved": _resolve_import(chain, self.aliases),
                "held": self._held(),
                "in_loop": self._loop_depth > 0,
                "nargs": len(node.args),
                "kwargs": kwargs,
                "passes_budget": passes,
                "raw_budget": raw,
            })

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate summary units
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                expr = item.context_expr
                call = isinstance(expr, ast.Call)
                chain = attr_chain(expr.func if call else expr)
                self._record_calls(expr)
                if chain is None:
                    continue
                descriptor: dict[str, object] = {
                    "line": stmt.lineno, "chain": chain, "call": call,
                    "held": self._held(),
                }
                self.withs.append(descriptor)
                self._with_stack.append(descriptor)
                pushed += 1
            self._walk_block(stmt.body)
            for _ in range(pushed):
                self._with_stack.pop()
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            for root in _stmt_exprs(stmt):
                self._record_calls(root)
            self._loop_depth += 1
            self._walk_block(stmt.body)
            self._loop_depth -= 1
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._record_calls(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body)
            for handler in stmt.handlers:
                self._walk_block(handler.body)
            self._walk_block(stmt.orelse)
            self._walk_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Match):
            self._record_calls(stmt.subject)
            for case in stmt.cases:
                self._walk_block(case.body)
            return
        for root in _stmt_exprs(stmt):
            self._record_calls(root)


def _stmt_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """Expressions evaluated by ``stmt`` itself (not nested blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def _own_statements(body: Sequence[ast.stmt]) -> list[ast.stmt]:
    """All statements of a function body, nested defs excluded."""
    collected: list[ast.stmt] = []
    stack: list[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        collected.append(stmt)
        for attr in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, attr, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", []):
            stack.extend(case.body)
    return collected


def summarize_module(relpath: str, tree: ast.Module,
                     aliases: Mapping[str, str]) -> dict[str, object]:
    """Config-independent summary of one module (JSON-serialisable)."""
    module = module_name_for(relpath)
    classes: dict[str, dict[str, object]] = {}
    functions: dict[str, dict[str, object]] = {}

    def visit(body: Sequence[ast.stmt], stack: tuple[str, ...],
              cls: str | None) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                bases = [base_name for base in node.bases
                         if (base_name := _base_name(base)) is not None]
                classes[node.name] = {
                    "bases": bases, "methods": [], "attrs": [],
                    "line": node.lineno,
                }
                visit(node.body, stack + (node.name,), node.name)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                qual = ".".join(stack + (node.name,))
                params = _param_names(node.args)
                budget_params = [name for name in params
                                 if BUDGET_NAME_RE.search(name)]
                walker = _FunctionWalker(aliases)
                walker.walk(node, budget_params)
                if cls is not None and cls in classes:
                    methods = classes[cls]["methods"]
                    assert isinstance(methods, list)
                    methods.append(node.name)
                    attrs = classes[cls]["attrs"]
                    assert isinstance(attrs, list)
                    for stmt in _own_statements(node.body):
                        for target in _self_attr_targets(stmt):
                            if target not in attrs:
                                attrs.append(target)
                functions[qual] = {
                    "line": node.lineno,
                    "name": node.name,
                    "cls": cls,
                    "params": params,
                    "budget_params": budget_params,
                    "has_budget": bool(
                        budget_params or walker.budget_locals
                        or walker.has_budget_attr),
                    "calls": walker.calls,
                    "withs": walker.withs,
                }
                visit(node.body, stack + (node.name,), cls)
            elif isinstance(node, (ast.If, ast.Try)):
                # Module-level conditional definitions.
                visit(_flat_bodies(node), stack, cls)

    visit(tree.body, (), None)
    return {"module": module, "path": relpath,
            "classes": classes, "functions": functions}


def _flat_bodies(node: ast.stmt) -> list[ast.stmt]:
    bodies: list[ast.stmt] = []
    for attr in ("body", "orelse", "finalbody"):
        bodies.extend(getattr(node, attr, []))
    for handler in getattr(node, "handlers", []):
        bodies.extend(handler.body)
    return bodies


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _self_attr_targets(stmt: ast.stmt) -> list[str]:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            names.append(target.attr)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Attribute) and \
                        isinstance(element.value, ast.Name) and \
                        element.value.id == "self":
                    names.append(element.attr)
    return names


# ---------------------------------------------------------------------------
# Project graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionNode:
    """One function in the project graph (``module:Qual.name`` keyed)."""

    key: str
    module: str
    path: str
    qual: str
    info: dict[str, object]

    @property
    def cls(self) -> str | None:
        cls = self.info.get("cls")
        return cls if isinstance(cls, str) else None

    @property
    def name(self) -> str:
        return str(self.info.get("name", ""))

    @property
    def line(self) -> int:
        line = self.info.get("line", 0)
        return line if isinstance(line, int) else 0

    @property
    def calls(self) -> list[dict[str, object]]:
        calls = self.info.get("calls", [])
        return calls if isinstance(calls, list) else []

    @property
    def withs(self) -> list[dict[str, object]]:
        withs = self.info.get("withs", [])
        return withs if isinstance(withs, list) else []

    @property
    def budget_params(self) -> list[str]:
        params = self.info.get("budget_params", [])
        return params if isinstance(params, list) else []

    @property
    def has_budget(self) -> bool:
        return bool(self.info.get("has_budget"))


class ProjectGraph:
    """Call graph recomposed from per-file summaries each run."""

    def __init__(self, summaries: Iterable[Mapping[str, object]],
                 receiver_roles: Mapping[str, tuple[str, ...]]) -> None:
        self.receiver_roles = dict(receiver_roles)
        self.functions: dict[str, FunctionNode] = {}
        #: (class name, method name) -> function keys (collisions union).
        self._methods: dict[tuple[str, str], list[str]] = {}
        #: module-level function name -> keys, per module.
        self._module_functions: dict[tuple[str, str], str] = {}
        #: class name -> base-name lists (collisions union).
        self._bases: dict[str, list[list[str]]] = {}
        #: class name -> self-assigned attrs (collisions union).
        self._class_attrs: dict[str, set[str]] = {}
        self._modules: set[str] = set()
        self._files = 0
        for summary in summaries:
            self._ingest(summary)
        self._subclasses = self._build_subclass_index()

    def _ingest(self, summary: Mapping[str, object]) -> None:
        module = str(summary.get("module", ""))
        path = str(summary.get("path", ""))
        self._modules.add(module)
        self._files += 1
        classes = summary.get("classes", {})
        if isinstance(classes, Mapping):
            for cls_name, info in classes.items():
                if not isinstance(info, Mapping):
                    continue
                bases = [str(base) for base in info.get("bases", [])]
                self._bases.setdefault(cls_name, []).append(bases)
                attrs = self._class_attrs.setdefault(cls_name, set())
                attrs.update(str(attr) for attr in info.get("attrs", []))
        functions = summary.get("functions", {})
        if not isinstance(functions, Mapping):
            return
        for qual, info in functions.items():
            if not isinstance(info, Mapping):
                continue
            key = f"{module}:{qual}"
            node = FunctionNode(key=key, module=module, path=path,
                                qual=str(qual), info=dict(info))
            self.functions[key] = node
            cls = node.cls
            if cls is not None:
                self._methods.setdefault((cls, node.name), []).append(key)
            elif "." not in str(qual):
                self._module_functions[(module, node.name)] = key

    # -- class structure ---------------------------------------------------

    def mro(self, cls_name: str) -> list[str]:
        """Approximate linearisation: BFS over base names."""
        order: list[str] = []
        queue = [cls_name]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            for bases in self._bases.get(current, []):
                queue.extend(bases)
        return order

    def _build_subclass_index(self) -> dict[str, set[str]]:
        index: dict[str, set[str]] = {}
        for cls_name in self._bases:
            for ancestor in self.mro(cls_name)[1:]:
                index.setdefault(ancestor, set()).add(cls_name)
        return index

    def attr_owner(self, cls_name: str, attr: str) -> str:
        """The base-most class in ``cls_name``'s MRO assigning ``attr``
        (the lock's *defining* owner), else ``cls_name`` itself."""
        owner = cls_name
        for candidate in self.mro(cls_name):
            if attr in self._class_attrs.get(candidate, set()):
                owner = candidate
        return owner

    def find_method(self, cls_name: str, method: str) -> list[str]:
        """Keys of ``method`` resolved through the approximate MRO; on a
        miss, overriding subclasses are searched (union, conservative)."""
        for candidate in self.mro(cls_name):
            keys = self._methods.get((candidate, method))
            if keys:
                return list(keys)
        keys_union: list[str] = []
        for sub in sorted(self._subclasses.get(cls_name, set())):
            keys_union.extend(self._methods.get((sub, method), []))
        return keys_union

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: Mapping[str, object],
                     caller: FunctionNode) -> list[str]:
        resolved = call.get("resolved")
        if isinstance(resolved, str):
            keys = self._resolve_dotted(resolved)
            if keys:
                return keys
        chain = call.get("chain")
        if not isinstance(chain, list) or not chain:
            return []
        chain = [str(part) for part in chain]
        if len(chain) == 1:
            return self._resolve_bare(chain[0], caller)
        receiver, method = chain[-2], chain[-1]
        if receiver in ("self", "cls"):
            cls = caller.cls
            if cls is None:
                return []
            return self.find_method(cls, method)
        if receiver == "super()":
            cls = caller.cls
            if cls is None:
                return []
            keys: list[str] = []
            for base in self.mro(cls)[1:]:
                keys = self._methods.get((base, method), [])
                if keys:
                    break
            return list(keys)
        return self.resolve_role_method(receiver, method)

    def resolve_role_method(self, receiver: str,
                            method: str) -> list[str]:
        """Resolve ``<receiver>.<method>()`` through the role map."""
        keys: list[str] = []
        for cls in self.receiver_roles.get(receiver, ()):
            keys.extend(self.find_method(cls, method))
        return keys

    def _resolve_dotted(self, dotted: str) -> list[str]:
        for module in self._modules:
            if not dotted.startswith(module + "."):
                continue
            remainder = dotted[len(module) + 1:]
            key = f"{module}:{remainder}"
            if key in self.functions:
                return [key]
            # Imported class used as a constructor.
            init = f"{module}:{remainder}.__init__"
            if init in self.functions:
                return [init]
        return []

    def _resolve_bare(self, name: str,
                      caller: FunctionNode) -> list[str]:
        key = self._module_functions.get((caller.module, name))
        if key is not None:
            return [key]
        init = f"{caller.module}:{name}.__init__"
        if init in self.functions:
            return [init]
        return []

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, int]:
        calls = sum(len(node.calls) for node in self.functions.values())
        resolved = sum(
            1 for node in self.functions.values()
            for call in node.calls if self.resolve_call(call, node))
        return {"files": self._files,
                "functions": len(self.functions),
                "classes": len(self._bases),
                "calls": calls,
                "resolved_calls": resolved}
