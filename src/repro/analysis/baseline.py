"""Checked-in baseline for ``repro lint``.

The baseline records findings that are *known and justified* — typically
documented false positives a rule cannot see past — so the lint can run
red-on-anything-new while the justified residue stays visible in review.
Entries are matched on the line-independent finding key ``(path, rule,
symbol, message)``; line numbers are stored for humans but ignored by
matching, so edits above a baselined site do not churn the file.

A baseline entry that no longer matches anything is *stale* and fails
the run: baselines only shrink or stay, they never silently rot.

An entry whose ``justification`` is still the generated placeholder (or
empty) is *unjustified* and also fails the run: ``--update-baseline``
writes the placeholder precisely so an unexplained suppression cannot
survive review by default.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.engine import Finding

FORMAT_VERSION = 1

#: What ``save_baseline`` writes into fresh entries.  A baseline run
#: rejects any entry still carrying it: the placeholder marks an entry
#: a human has not yet justified.
PLACEHOLDER_JUSTIFICATION = ("TODO: explain why this is a false positive "
                             "or out of scope")


@dataclass
class BaselineMatch:
    """Findings partitioned against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[dict[str, object]] = field(default_factory=list)


def load_baseline(path: str) -> list[dict[str, object]]:
    """Read baseline entries; a missing file is an empty baseline."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return []
    if not isinstance(payload, dict) or \
            payload.get("version") != FORMAT_VERSION or \
            not isinstance(payload.get("findings"), list):
        raise ValueError(
            f"{path}: not a repro-lint baseline "
            f"(expected {{'version': {FORMAT_VERSION}, 'findings': [...]}})")
    entries: list[dict[str, object]] = []
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or \
                not all(isinstance(entry.get(key), str)
                        for key in ("path", "rule", "symbol", "message")):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        entries.append(entry)
    return entries


def save_baseline(path: str, findings: list[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    entries = [{"path": finding.path, "line": finding.line,
                "rule": finding.rule, "symbol": finding.symbol,
                "message": finding.message,
                "justification": PLACEHOLDER_JUSTIFICATION}
               for finding in sorted(findings, key=Finding.sort_key)]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": FORMAT_VERSION, "findings": entries},
                  handle, indent=2)
        handle.write("\n")


def unjustified_entries(
        entries: list[dict[str, object]]) -> list[dict[str, object]]:
    """Entries whose justification is absent, blank, or the placeholder.

    These fail the lint run just like new findings: an unexplained
    baseline entry is a muted violation, not a documented false
    positive.  The comparison strips whitespace so reflowed placeholders
    do not slip through.
    """
    flagged: list[dict[str, object]] = []
    placeholder = " ".join(PLACEHOLDER_JUSTIFICATION.split())
    for entry in entries:
        justification = str(entry.get("justification") or "")
        collapsed = " ".join(justification.split())
        if not collapsed or collapsed == placeholder:
            flagged.append(entry)
    return flagged


def _canonical_path(path: str, base_dir: str | None) -> str:
    """Absolute posix form of ``path`` resolved against ``base_dir``.

    Baseline entries store paths relative to the baseline file; findings
    carry CWD-relative paths.  Resolving both to absolute form before
    keying makes matching independent of the directory ``repro lint``
    happens to run from.
    """
    root = base_dir if base_dir is not None else os.getcwd()
    return os.path.abspath(os.path.join(root, path)).replace(os.sep, "/")


def _entry_key(entry: dict[str, object],
               base_dir: str | None) -> tuple[str, str, str, str]:
    return (_canonical_path(str(entry["path"]), base_dir),
            str(entry["rule"]), str(entry["symbol"]),
            str(entry["message"]))


def apply_baseline(findings: list[Finding],
                   entries: list[dict[str, object]],
                   base_dir: str | None = None) -> BaselineMatch:
    """Split findings into new vs baselined; report stale entries.

    ``base_dir`` is the directory entry paths are relative to — pass the
    baseline file's directory so matching survives running the linter
    from outside the repo root.
    """
    remaining: dict[tuple[str, str, str, str], list[dict[str, object]]] = {}
    for entry in entries:
        remaining.setdefault(_entry_key(entry, base_dir), []).append(entry)
    match = BaselineMatch()
    for finding in findings:
        path, rule, symbol, message = finding.key()
        bucket = remaining.get(
            (_canonical_path(path, None), rule, symbol, message))
        if bucket:
            bucket.pop()
            match.baselined.append(finding)
        else:
            match.new.append(finding)
    for bucket in remaining.values():
        match.stale.extend(bucket)
    match.stale.sort(key=lambda entry: (str(entry["path"]),
                                        str(entry["rule"])))
    return match
