"""Flow-sensitive dataflow over :mod:`repro.analysis.cfg` graphs.

One client today: the **resource-balance** analysis.  An *obligation*
opens when a paired acquire runs (``pool.pin`` -> ``unpin``,
``lock.acquire`` -> ``release``, manual ``__enter__`` -> ``__exit__``)
or when a tracked constructor's result is bound to a local (``sock =
socket.socket(...)`` -> ``sock.close()``).  The analysis propagates the
*may-be-open* obligation set forward through the CFG (union at joins)
and reports every obligation still open at the normal or exceptional
exit — i.e. some path leaks it.

Discharges besides the paired release:

* ``with`` statements never open obligations — the context manager owns
  the release;
* *ownership transfer* closes local-variable obligations: returning the
  variable, passing it as a call argument, yielding it, or storing it
  into an attribute/subscript/collection hands the release duty to the
  new owner (``self._listener = listener`` ends ``start()``'s duty);
* method calls **through** the variable (``listener.bind(...)``) are
  not transfers — the caller still owns the object.

``__enter__`` obligations are tracked only for bare local receivers:
``self._cm.__enter__()`` stores the manager on the instance, whose
lifetime the class manages across methods — out of scope for a single
function's CFG.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.cfg import CFG, CFGNode, build_cfg

__all__ = ["Obligation", "ResourceViolation", "analyze_resources"]


@dataclass(frozen=True)
class Obligation:
    """An open acquire awaiting its paired release."""

    receiver: str  # "self.pool", "lock", "listener", ...
    acquire: str   # "pin", "acquire", "__enter__", or the ctor target
    release: str   # method that discharges it
    line: int


@dataclass(frozen=True)
class ResourceViolation:
    """An obligation open at some function exit."""

    obligation: Obligation
    exceptional: bool  # leaked on an exception path
    normal: bool       # leaked on a normal-return path


def _chain_text(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class _Transfer:
    """Per-node transfer function for the resource analysis."""

    def __init__(self, pairs: Mapping[str, str],
                 ctor_calls: Mapping[str, str],
                 resolver: Callable[[ast.expr], str | None]) -> None:
        self.pairs = dict(pairs)
        self.ctor_calls = dict(ctor_calls)
        self.resolver = resolver

    # -- helpers -----------------------------------------------------------

    def _acquires(self, expr: ast.AST,
                  in_with_item: bool) -> list[Obligation]:
        found: list[Obligation] = []
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            release = self.pairs.get(method)
            if release is None:
                continue
            if in_with_item:
                continue  # the with statement balances it
            receiver = _chain_text(node.func.value)
            if receiver is None:
                continue
            if method == "__enter__" and "." in receiver:
                continue  # instance-held manager, cross-method lifetime
            found.append(Obligation(receiver=receiver, acquire=method,
                                    release=release, line=node.lineno))
        return found

    def _releases(self, expr: ast.AST) -> list[tuple[str, str]]:
        """(receiver, method) pairs of release-shaped calls."""
        released: list[tuple[str, str]] = []
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                receiver = _chain_text(node.func.value)
                if receiver is not None:
                    released.append((receiver, node.func.attr))
        return released

    def _ctor_bindings(self, stmt: ast.stmt) -> list[Obligation]:
        """``name = tracked_ctor(...)`` obligations."""
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return []
        value = stmt.value
        if value is None or not isinstance(value, ast.Call):
            return []
        dotted = self.resolver(value.func)
        if dotted is None or dotted not in self.ctor_calls:
            return []
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        found: list[Obligation] = []
        for target in targets:
            if isinstance(target, ast.Name):
                found.append(Obligation(
                    receiver=target.id, acquire=dotted,
                    release=self.ctor_calls[dotted], line=value.lineno))
        return found

    def _escaped_locals(self, stmt: ast.stmt) -> set[str]:
        """Local names whose value is handed to a new owner by ``stmt``."""
        escaped: set[str] = set()
        roots: list[ast.expr] = []
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            roots.append(stmt.value)
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, (ast.Yield, ast.YieldFrom)) and \
                stmt.value.value is not None:
            roots.append(stmt.value.value)
        if isinstance(stmt, ast.Assign):
            if any(not isinstance(target, ast.Name)
                   for target in stmt.targets):
                roots.append(stmt.value)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                roots.extend(node.args)
                roots.extend(kw.value for kw in node.keywords)
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Name):
                    escaped.add(node.id)
        return escaped

    # -- the transfer proper ----------------------------------------------

    def apply(self, node: CFGNode, state: frozenset[Obligation],
              ) -> tuple[frozenset[Obligation], frozenset[Obligation]]:
        """(normal out-state, exceptional out-state).

        The exceptional state omits the node's own acquires: an acquire
        call that raises never acquired, so the obligation must not leak
        onto the exception edge of its own statement.
        """
        stmt = node.stmt
        if stmt is None or node.kind != "stmt":
            return state, state
        out = set(state)

        in_with = isinstance(stmt, (ast.With, ast.AsyncWith))
        exprs: Sequence[ast.AST]
        if in_with:
            exprs = [item.context_expr for item in stmt.items]
        else:
            exprs = _head_exprs(stmt)

        for expr in exprs:
            for receiver, method in self._releases(expr):
                out = {ob for ob in out
                       if not (ob.receiver == receiver
                               and ob.release == method)}
        escaped = self._escaped_locals(stmt)
        if escaped:
            out = {ob for ob in out
                   if not ("." not in ob.receiver
                           and ob.receiver in escaped)}
        exc_out = frozenset(out)
        for expr in exprs:
            out.update(self._acquires(expr, in_with_item=in_with))
        out.update(self._ctor_bindings(stmt))
        return frozenset(out), exc_out


def _head_exprs(stmt: ast.stmt) -> list[ast.AST]:
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def analyze_resources(
        function: ast.FunctionDef | ast.AsyncFunctionDef, *,
        pairs: Mapping[str, str],
        ctor_calls: Mapping[str, str],
        resolver: Callable[[ast.expr], str | None],
) -> list[ResourceViolation]:
    """May-leak obligations of one function, by forward fixpoint."""
    cfg: CFG = build_cfg(function)
    transfer = _Transfer(pairs, ctor_calls, resolver)

    entry_state: dict[int, frozenset[Obligation]] = {
        cfg.entry: frozenset()}
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        state = entry_state.get(index, frozenset())
        out, exc_out = transfer.apply(cfg.nodes[index], state)
        exc_targets = cfg.exc_successors(index)
        for succ in cfg.successors(index):
            carried = exc_out if succ in exc_targets else out
            merged = entry_state.get(succ, frozenset()) | carried
            if succ not in entry_state or \
                    merged != entry_state[succ]:
                entry_state[succ] = merged
                worklist.append(succ)

    at_exit = entry_state.get(cfg.exit, frozenset())
    at_raise = entry_state.get(cfg.raise_exit, frozenset())
    violations: list[ResourceViolation] = []
    for obligation in sorted(at_exit | at_raise,
                             key=lambda ob: (ob.line, ob.receiver)):
        violations.append(ResourceViolation(
            obligation=obligation,
            exceptional=obligation in at_raise,
            normal=obligation in at_exit))
    return violations
