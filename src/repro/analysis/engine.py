"""Rule engine for ``repro lint`` (stdlib-``ast``, zero dependencies).

The engine is deliberately small: a **rule** is a function that receives
a :class:`ModuleContext` (parsed tree, source, config, scope map) and
reports :class:`Finding` objects; rules register themselves with the
:func:`rule` decorator the same way bench groups and oracle families
plug into their runners.  ``run_lint`` walks a set of files/directories,
runs every registered rule whose *scope predicate* accepts the file, and
returns the findings partitioned into active and suppressed.

Suppression works at three anchors, checked in order:

* the flagged line itself carries ``# repro-lint: disable=<rule>``;
* the line directly above it does;
* the ``def`` line of the enclosing function does (function-wide).

Findings are identified for baseline purposes by ``(path, rule, symbol,
message)`` — deliberately *without* the line number, so unrelated edits
above a documented false positive do not churn the baseline file (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig

#: Comment syntax recognised by the suppression scanner.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, \-]+)")


@dataclass(frozen=True)
class Finding:
    """One discipline violation (or documented exception) in one file."""

    path: str
    line: int
    rule: str
    symbol: str
    message: str

    def key(self) -> tuple[str, str, str, str]:
        """Line-independent identity used by baseline matching."""
        return (self.path, self.rule, self.symbol, self.message)

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def format(self) -> str:
        where = f"{self.symbol}: " if self.symbol else ""
        return f"{self.path}:{self.line}: [{self.rule}] {where}{self.message}"

    def as_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "symbol": self.symbol, "message": self.message}


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, one-line summary, check, scope predicate."""

    rule_id: str
    summary: str
    check: Callable[["ModuleContext"], None]
    applies: Callable[[LintConfig, str], bool]


#: The registry the :func:`rule` decorator fills (id -> rule, insertion
#: ordered so reports are stable).
RULES: dict[str, Rule] = {}


def rule(rule_id: str, summary: str, *,
         applies: Callable[[LintConfig, str], bool] | None = None,
         ) -> Callable[[Callable[["ModuleContext"], None]],
                       Callable[["ModuleContext"], None]]:
    """Register a rule function under ``rule_id``.

    ``applies(config, relpath)`` gates which files the rule sees; the
    default accepts every file.  Registering the same id twice is a
    programming error and raises immediately.
    """
    if not re.fullmatch(r"[a-z][a-z0-9\-]*", rule_id):
        raise ValueError(f"rule id {rule_id!r} must be kebab-case")

    def register(check: Callable[["ModuleContext"], None],
                 ) -> Callable[["ModuleContext"], None]:
        if rule_id in RULES:
            raise ValueError(f"rule {rule_id!r} already registered")
        RULES[rule_id] = Rule(
            rule_id=rule_id, summary=summary, check=check,
            applies=applies if applies is not None else lambda _c, _p: True)
        return check

    return register


def in_dirs(*tokens: str) -> Callable[[LintConfig, str], bool]:
    """Scope helper: accept files whose path contains ``/<token>/`` or
    ends with ``<token>`` (so ``queries/evaluator.py`` works too).

    ``LintConfig.extra_scope_tokens`` are merged in at match time, so a
    config can widen every rule's net without re-registering rules.
    """

    def predicate(config: LintConfig, relpath: str) -> bool:
        haystack = "/" + relpath.replace(os.sep, "/")
        scope = tokens + tuple(config.extra_scope_tokens)
        return any(f"/{token.strip('/')}/" in haystack
                   or haystack.endswith("/" + token.lstrip("/"))
                   for token in scope)

    return predicate


class _ScopeMap:
    """Innermost function/class qualname lookup by line number."""

    def __init__(self, tree: ast.Module) -> None:
        #: (start_line, end_line, qualname, is_function)
        self.spans: list[tuple[int, int, str, bool]] = []
        self._collect(tree.body, ())

    def _collect(self, body: Sequence[ast.stmt],
                 stack: tuple[str, ...]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                qual = stack + (node.name,)
                end = node.end_lineno if node.end_lineno is not None \
                    else node.lineno
                is_function = not isinstance(node, ast.ClassDef)
                self.spans.append((node.lineno, end, ".".join(qual),
                                   is_function))
                self._collect(node.body, qual)
            elif isinstance(node, (ast.If, ast.For, ast.While, ast.With,
                                   ast.Try)):
                self._collect(_compound_bodies(node), stack)

    def qualname(self, line: int) -> str:
        best = ""
        best_start = -1
        for start, end, qual, _is_function in self.spans:
            if start <= line <= end and start > best_start:
                best, best_start = qual, start
        return best

    def enclosing_def_lines(self, line: int) -> list[int]:
        """Def lines of every enclosing function, innermost included."""
        return [start for start, end, _qual, is_function in self.spans
                if is_function and start <= line <= end]


def owned_nodes(function: ast.FunctionDef | ast.AsyncFunctionDef,
                ) -> list[ast.AST]:
    """All descendant nodes of ``function`` except those belonging to
    nested function definitions — each function is its own check unit."""
    owned: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        owned.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return owned


def _compound_bodies(node: ast.stmt) -> list[ast.stmt]:
    bodies: list[ast.stmt] = []
    for attr in ("body", "orelse", "finalbody"):
        bodies.extend(getattr(node, attr, []))
    for handler in getattr(node, "handlers", []):
        bodies.extend(handler.body)
    return bodies


def _collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line."""
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # the ast parse will have raised a clearer error already
    return suppressions


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted import target (modules and members alike)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname if name.asname else \
                    name.name.split(".", 1)[0]
                target = name.name if name.asname else \
                    name.name.split(".", 1)[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            for name in node.names:
                bound = name.asname if name.asname else name.name
                aliases[bound] = f"{node.module}.{name.name}"
    return aliases


class ModuleContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(self, relpath: str, source: str, tree: ast.Module,
                 config: LintConfig) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.config = config
        self.findings: list[Finding] = []
        self.scopes = _ScopeMap(tree)
        #: Names bound by imports, resolved to dotted targets —
        #: ``{"_maintenance": "repro.indexes.maintenance"}``.
        self.aliases = _collect_aliases(tree)

    def resolve_call_target(self, func: ast.expr) -> str | None:
        """Dotted path of a call target, imports resolved.

        ``time.time`` -> ``"time.time"`` (through any alias), ``from
        time import time; time()`` -> ``"time.time"``, unknown bases
        return ``None``.
        """
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            path=self.relpath, line=line, rule=rule_id,
            symbol=self.scopes.qualname(line), message=message))


@dataclass
class LintResult:
    """Outcome of one lint run: active findings plus bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into ``.py`` file paths (sorted walk)."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(name for name in dirnames
                                     if name != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def _relative_path(path: str) -> str:
    """Repo-relative posix path when under the CWD, else as given."""
    cwd = os.getcwd()
    absolute = os.path.abspath(path)
    if absolute.startswith(cwd + os.sep):
        return os.path.relpath(absolute, cwd).replace(os.sep, "/")
    return path.replace(os.sep, "/")


def lint_file(path: str, config: LintConfig,
              rule_ids: Sequence[str] | None = None) -> LintResult:
    """Run the (selected) rules over one file."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    relpath = _relative_path(path)
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(Finding(
            path=relpath, line=exc.lineno or 1, rule="parse-error",
            symbol="", message=f"file does not parse: {exc.msg}"))
        return result
    context = ModuleContext(relpath, source, tree, config)
    selected = (RULES.values() if rule_ids is None
                else [RULES[rule_id] for rule_id in rule_ids])
    for registered in selected:
        if registered.applies(config, relpath):
            registered.check(context)
    suppressions = _collect_suppressions(source)
    for finding in context.findings:
        lines = [finding.line, finding.line - 1]
        lines.extend(context.scopes.enclosing_def_lines(finding.line))
        disabled: set[str] = set()
        for line in lines:
            disabled |= suppressions.get(line, set())
        if finding.rule in disabled or "all" in disabled:
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def run_lint(paths: Iterable[str], config: LintConfig | None = None,
             rule_ids: Sequence[str] | None = None) -> LintResult:
    """Lint every python file under ``paths`` with the registered rules."""
    # Import for side effect: the rule modules register themselves.
    from repro.analysis import rules as _rules  # noqa: F401

    if config is None:
        config = LintConfig()
    if rule_ids is not None:
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(unknown)}; "
                             f"known: {', '.join(sorted(RULES))}")
    total = LintResult()
    for path in iter_python_files(paths):
        result = lint_file(path, config, rule_ids)
        total.findings.extend(result.findings)
        total.suppressed.extend(result.suppressed)
        total.files_checked += result.files_checked
    total.findings.sort(key=Finding.sort_key)
    total.suppressed.sort(key=Finding.sort_key)
    return total
