"""Rule engine for ``repro lint`` (stdlib-``ast``, zero dependencies).

The engine is deliberately small: a **rule** is a function that receives
a :class:`ModuleContext` (parsed tree, source, config, scope map) and
reports :class:`Finding` objects; rules register themselves with the
:func:`rule` decorator the same way bench groups and oracle families
plug into their runners.  ``run_lint`` walks a set of files/directories,
runs every registered rule whose *scope predicate* accepts the file, and
returns the findings partitioned into active and suppressed.

Suppression works at three anchors, checked in order:

* the flagged line itself carries ``# repro-lint: disable=<rule>``;
* the line directly above it does;
* the ``def`` line of the enclosing function does (function-wide).

Findings are identified for baseline purposes by ``(path, rule, symbol,
message)`` — deliberately *without* the line number, so unrelated edits
above a documented false positive do not churn the baseline file (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.analysis import callgraph as _callgraph
from repro.analysis.config import LintConfig

#: Bump to invalidate every analysis cache (format or semantics change).
ANALYSIS_VERSION = 1

#: Comment syntax recognised by the suppression scanner.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, \-]+)")


@dataclass(frozen=True)
class Finding:
    """One discipline violation (or documented exception) in one file."""

    path: str
    line: int
    rule: str
    symbol: str
    message: str

    def key(self) -> tuple[str, str, str, str]:
        """Line-independent identity used by baseline matching."""
        return (self.path, self.rule, self.symbol, self.message)

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def format(self) -> str:
        where = f"{self.symbol}: " if self.symbol else ""
        return f"{self.path}:{self.line}: [{self.rule}] {where}{self.message}"

    def as_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "symbol": self.symbol, "message": self.message}


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, one-line summary, check, scope predicate."""

    rule_id: str
    summary: str
    check: Callable[["ModuleContext"], None]
    applies: Callable[[LintConfig, str], bool]


#: The registry the :func:`rule` decorator fills (id -> rule, insertion
#: ordered so reports are stable).
RULES: dict[str, Rule] = {}


def rule(rule_id: str, summary: str, *,
         applies: Callable[[LintConfig, str], bool] | None = None,
         ) -> Callable[[Callable[["ModuleContext"], None]],
                       Callable[["ModuleContext"], None]]:
    """Register a rule function under ``rule_id``.

    ``applies(config, relpath)`` gates which files the rule sees; the
    default accepts every file.  Registering the same id twice is a
    programming error and raises immediately.
    """
    if not re.fullmatch(r"[a-z][a-z0-9\-]*", rule_id):
        raise ValueError(f"rule id {rule_id!r} must be kebab-case")

    def register(check: Callable[["ModuleContext"], None],
                 ) -> Callable[["ModuleContext"], None]:
        if rule_id in RULES:
            raise ValueError(f"rule {rule_id!r} already registered")
        RULES[rule_id] = Rule(
            rule_id=rule_id, summary=summary, check=check,
            applies=applies if applies is not None else lambda _c, _p: True)
        return check

    return register


@dataclass(frozen=True)
class ProjectRule:
    """A whole-project rule: runs once over every file's summary."""

    rule_id: str
    summary: str
    check: Callable[["ProjectContext"], None]


#: Registry for project-wide passes (lock-order, budget-propagation).
PROJECT_RULES: dict[str, ProjectRule] = {}


def project_rule(rule_id: str, summary: str,
                 ) -> Callable[[Callable[["ProjectContext"], None]],
                               Callable[["ProjectContext"], None]]:
    """Register a project-wide rule (same id rules as :func:`rule`)."""
    if not re.fullmatch(r"[a-z][a-z0-9\-]*", rule_id):
        raise ValueError(f"rule id {rule_id!r} must be kebab-case")

    def register(check: Callable[["ProjectContext"], None],
                 ) -> Callable[["ProjectContext"], None]:
        if rule_id in PROJECT_RULES or rule_id in RULES:
            raise ValueError(f"rule {rule_id!r} already registered")
        PROJECT_RULES[rule_id] = ProjectRule(
            rule_id=rule_id, summary=summary, check=check)
        return check

    return register


def in_dirs(*tokens: str) -> Callable[[LintConfig, str], bool]:
    """Scope helper: accept files whose path contains ``/<token>/`` or
    ends with ``<token>`` (so ``queries/evaluator.py`` works too).

    ``LintConfig.extra_scope_tokens`` are merged in at match time, so a
    config can widen every rule's net without re-registering rules.
    """

    def predicate(config: LintConfig, relpath: str) -> bool:
        haystack = "/" + relpath.replace(os.sep, "/")
        scope = tokens + tuple(config.extra_scope_tokens)
        return any(f"/{token.strip('/')}/" in haystack
                   or haystack.endswith("/" + token.lstrip("/"))
                   for token in scope)

    return predicate


class _ScopeMap:
    """Innermost function/class qualname lookup by line number."""

    def __init__(self, tree: ast.Module) -> None:
        #: (start_line, end_line, qualname, is_function)
        self.spans: list[tuple[int, int, str, bool]] = []
        self._collect(tree.body, ())

    def _collect(self, body: Sequence[ast.stmt],
                 stack: tuple[str, ...]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                qual = stack + (node.name,)
                end = node.end_lineno if node.end_lineno is not None \
                    else node.lineno
                is_function = not isinstance(node, ast.ClassDef)
                self.spans.append((node.lineno, end, ".".join(qual),
                                   is_function))
                self._collect(node.body, qual)
            elif isinstance(node, (ast.If, ast.For, ast.While, ast.With,
                                   ast.Try)):
                self._collect(_compound_bodies(node), stack)

    def qualname(self, line: int) -> str:
        best = ""
        best_start = -1
        for start, end, qual, _is_function in self.spans:
            if start <= line <= end and start > best_start:
                best, best_start = qual, start
        return best

    def enclosing_def_lines(self, line: int) -> list[int]:
        """Def lines of every enclosing function, innermost included."""
        return [start for start, end, _qual, is_function in self.spans
                if is_function and start <= line <= end]


def owned_nodes(function: ast.FunctionDef | ast.AsyncFunctionDef,
                ) -> list[ast.AST]:
    """All descendant nodes of ``function`` except those belonging to
    nested function definitions — each function is its own check unit."""
    owned: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        owned.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return owned


def _compound_bodies(node: ast.stmt) -> list[ast.stmt]:
    bodies: list[ast.stmt] = []
    for attr in ("body", "orelse", "finalbody"):
        bodies.extend(getattr(node, attr, []))
    for handler in getattr(node, "handlers", []):
        bodies.extend(handler.body)
    return bodies


def _collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line."""
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # the ast parse will have raised a clearer error already
    return suppressions


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted import target (modules and members alike)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname if name.asname else \
                    name.name.split(".", 1)[0]
                target = name.name if name.asname else \
                    name.name.split(".", 1)[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            for name in node.names:
                bound = name.asname if name.asname else name.name
                aliases[bound] = f"{node.module}.{name.name}"
    return aliases


class ModuleContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(self, relpath: str, source: str, tree: ast.Module,
                 config: LintConfig) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.config = config
        self.findings: list[Finding] = []
        self.scopes = _ScopeMap(tree)
        #: Names bound by imports, resolved to dotted targets —
        #: ``{"_maintenance": "repro.indexes.maintenance"}``.
        self.aliases = _collect_aliases(tree)

    def resolve_call_target(self, func: ast.expr) -> str | None:
        """Dotted path of a call target, imports resolved.

        ``time.time`` -> ``"time.time"`` (through any alias), ``from
        time import time; time()`` -> ``"time.time"``, unknown bases
        return ``None``.
        """
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def report(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            path=self.relpath, line=line, rule=rule_id,
            symbol=self.scopes.qualname(line), message=message))


@dataclass
class LintResult:
    """Outcome of one lint run: active findings plus bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files whose per-file analysis was served from the content cache.
    cache_hits: int = 0
    #: Filled by project passes (``--graph``): call-graph stats plus the
    #: lock-order nodes/edges/cycles.
    graph_report: dict[str, object] = field(default_factory=dict)

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)


@dataclass
class FileRecord:
    """Cacheable per-file analysis product: module-rule findings plus
    the suppression/scope/summary data the project passes need."""

    relpath: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    suppress_lines: dict[int, set[str]] = field(default_factory=dict)
    #: (start, end, qualname, is_function) — mirrors _ScopeMap.spans.
    scope_spans: list[tuple[int, int, str, bool]] = \
        field(default_factory=list)
    summary: dict[str, object] | None = None

    def qualname(self, line: int) -> str:
        best, best_start = "", -1
        for start, end, qual, _is_function in self.scope_spans:
            if start <= line <= end and start > best_start:
                best, best_start = qual, start
        return best

    def enclosing_def_lines(self, line: int) -> list[int]:
        return [start for start, end, _qual, is_function
                in self.scope_spans
                if is_function and start <= line <= end]

    def disabled_rules(self, line: int) -> set[str]:
        lines = [line, line - 1, *self.enclosing_def_lines(line)]
        disabled: set[str] = set()
        for anchor in lines:
            disabled |= self.suppress_lines.get(anchor, set())
        return disabled

    def to_payload(self) -> dict[str, object]:
        return {
            "relpath": self.relpath,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "suppress_lines": {str(line): sorted(rules) for line, rules
                               in self.suppress_lines.items()},
            "scope_spans": [list(span) for span in self.scope_spans],
            "summary": self.summary,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FileRecord":
        def _findings(key: str) -> list[Finding]:
            raw = payload.get(key, [])
            out: list[Finding] = []
            if isinstance(raw, list):
                for item in raw:
                    if isinstance(item, dict):
                        out.append(Finding(
                            path=str(item.get("path", "")),
                            line=int(item.get("line", 1)),
                            rule=str(item.get("rule", "")),
                            symbol=str(item.get("symbol", "")),
                            message=str(item.get("message", ""))))
            return out

        suppress_raw = payload.get("suppress_lines", {})
        suppress_lines: dict[int, set[str]] = {}
        if isinstance(suppress_raw, dict):
            for line_text, rules in suppress_raw.items():
                if isinstance(rules, list):
                    suppress_lines[int(line_text)] = \
                        {str(rule) for rule in rules}
        spans_raw = payload.get("scope_spans", [])
        spans: list[tuple[int, int, str, bool]] = []
        if isinstance(spans_raw, list):
            for span in spans_raw:
                if isinstance(span, list) and len(span) == 4:
                    spans.append((int(span[0]), int(span[1]),
                                  str(span[2]), bool(span[3])))
        summary = payload.get("summary")
        return cls(relpath=str(payload.get("relpath", "")),
                   findings=_findings("findings"),
                   suppressed=_findings("suppressed"),
                   suppress_lines=suppress_lines,
                   scope_spans=spans,
                   summary=summary if isinstance(summary, dict) else None)


class LintCache:
    """Content-hash cache of :class:`FileRecord` objects.

    One JSON file keyed by ``(ANALYSIS_VERSION, config fingerprint)``;
    entries map relpath -> (source sha256, record payload).  A warm
    ``repro lint`` run skips parsing and module rules for every
    unchanged file — the project passes recompose from the cached
    summaries, which is the cheap part.
    """

    def __init__(self, path: str, config: LintConfig) -> None:
        self.path = path
        self.key = f"{ANALYSIS_VERSION}:{config.fingerprint()}"
        self._entries: dict[str, dict[str, object]] = {}
        self._dirty = False
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if isinstance(payload, dict) and \
                    payload.get("key") == self.key and \
                    isinstance(payload.get("files"), dict):
                self._entries = payload["files"]
        except (OSError, ValueError):
            self._entries = {}

    def get(self, relpath: str, sha: str) -> FileRecord | None:
        entry = self._entries.get(relpath)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        record = entry.get("record")
        if not isinstance(record, dict):
            return None
        return FileRecord.from_payload(record)

    def put(self, relpath: str, sha: str, record: FileRecord) -> None:
        self._entries[relpath] = {"sha": sha,
                                  "record": record.to_payload()}
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"key": self.key, "files": self._entries}
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
        except OSError:
            pass  # a cache must never fail the run


class ProjectContext:
    """Everything a project-wide pass needs: config, per-file records,
    and the recomposed call graph."""

    def __init__(self, config: LintConfig,
                 records: Mapping[str, FileRecord]) -> None:
        self.config = config
        self.records = dict(records)
        summaries = [record.summary for record in records.values()
                     if record.summary is not None]
        self.graph = _callgraph.ProjectGraph(
            summaries, config.receiver_roles)
        self.findings: list[Finding] = []
        self.graph_report: dict[str, object] = {
            "call_graph": self.graph.stats()}

    def report(self, path: str, line: int, rule_id: str,
               message: str) -> None:
        record = self.records.get(path)
        symbol = record.qualname(line) if record is not None else ""
        self.findings.append(Finding(path=path, line=line, rule=rule_id,
                                     symbol=symbol, message=message))


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into ``.py`` file paths (sorted walk)."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(name for name in dirnames
                                     if name != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def _relative_path(path: str) -> str:
    """Repo-relative posix path when under the CWD, else as given."""
    cwd = os.getcwd()
    absolute = os.path.abspath(path)
    if absolute.startswith(cwd + os.sep):
        return os.path.relpath(absolute, cwd).replace(os.sep, "/")
    return path.replace(os.sep, "/")


def _build_record(path: str, relpath: str, source: str,
                  config: LintConfig,
                  rule_ids: Sequence[str] | None) -> FileRecord:
    """Parse one file, run the (selected) module rules, and collect the
    suppression/scope/summary data the project passes reuse."""
    record = FileRecord(relpath=relpath)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        record.findings.append(Finding(
            path=relpath, line=exc.lineno or 1, rule="parse-error",
            symbol="", message=f"file does not parse: {exc.msg}"))
        return record
    context = ModuleContext(relpath, source, tree, config)
    selected = (RULES.values() if rule_ids is None
                else [RULES[rule_id] for rule_id in rule_ids])
    for registered in selected:
        if registered.applies(config, relpath):
            registered.check(context)
    record.suppress_lines = _collect_suppressions(source)
    record.scope_spans = list(context.scopes.spans)
    record.summary = _callgraph.summarize_module(
        relpath, tree, context.aliases)
    for finding in context.findings:
        disabled = record.disabled_rules(finding.line)
        if finding.rule in disabled or "all" in disabled:
            record.suppressed.append(finding)
        else:
            record.findings.append(finding)
    return record


def lint_file(path: str, config: LintConfig,
              rule_ids: Sequence[str] | None = None) -> LintResult:
    """Run the (selected) module rules over one file."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    record = _build_record(path, _relative_path(path), source, config,
                           rule_ids)
    return LintResult(findings=list(record.findings),
                      suppressed=list(record.suppressed),
                      files_checked=1)


def run_lint(paths: Iterable[str], config: LintConfig | None = None,
             rule_ids: Sequence[str] | None = None,
             cache_path: str | None = None) -> LintResult:
    """Lint every python file under ``paths``: module rules per file,
    then the project-wide passes over the recomposed call graph.

    ``cache_path`` enables the content-hash cache: unchanged files skip
    parsing and module rules entirely (used by the CLI; library callers
    opt in explicitly).  The cache is only consulted when every rule
    runs — a filtered ``rule_ids`` run never reads or writes it.
    """
    # Import for side effect: the rule modules register themselves.
    from repro.analysis import rules as _rules  # noqa: F401

    if config is None:
        config = LintConfig()
    module_rule_ids: Sequence[str] | None = None
    project_selected: list[ProjectRule] = list(PROJECT_RULES.values())
    if rule_ids is not None:
        unknown = [rule_id for rule_id in rule_ids
                   if rule_id not in RULES and
                   rule_id not in PROJECT_RULES]
        if unknown:
            known = sorted(set(RULES) | set(PROJECT_RULES))
            raise ValueError(f"unknown rule ids: {', '.join(unknown)}; "
                             f"known: {', '.join(known)}")
        module_rule_ids = [rule_id for rule_id in rule_ids
                           if rule_id in RULES]
        project_selected = [PROJECT_RULES[rule_id] for rule_id in rule_ids
                            if rule_id in PROJECT_RULES]

    cache: LintCache | None = None
    if cache_path is not None and rule_ids is None:
        cache = LintCache(cache_path, config)

    total = LintResult()
    records: dict[str, FileRecord] = {}
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        relpath = _relative_path(path)
        record: FileRecord | None = None
        sha = ""
        if cache is not None:
            sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
            record = cache.get(relpath, sha)
            if record is not None:
                total.cache_hits += 1
        if record is None:
            record = _build_record(path, relpath, source, config,
                                   module_rule_ids)
            if cache is not None:
                cache.put(relpath, sha, record)
        records[relpath] = record
        total.findings.extend(record.findings)
        total.suppressed.extend(record.suppressed)
        total.files_checked += 1
    if cache is not None:
        cache.save()

    if project_selected and records:
        context = ProjectContext(config, records)
        for registered in project_selected:
            registered.check(context)
        total.graph_report = context.graph_report
        for finding in context.findings:
            record_for = records.get(finding.path)
            disabled = record_for.disabled_rules(finding.line) \
                if record_for is not None else set()
            if finding.rule in disabled or "all" in disabled:
                total.suppressed.append(finding)
            else:
                total.findings.append(finding)

    total.findings.sort(key=Finding.sort_key)
    total.suppressed.sort(key=Finding.sort_key)
    return total
