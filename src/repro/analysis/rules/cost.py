"""Cost accounting: data-graph adjacency walks must charge a counter.

The paper's evaluation metric (Section 5) is the number of index- and
data-node visits; a traversal that forgets to charge silently
under-counts every figure downstream.  This rule requires that any
function in the metered modules (``queries/evaluator.py``, ``indexes/``)
that touches data-graph adjacency — the ``child_lists`` /
``parent_lists`` accessors, or ``children()`` / ``parents()`` /
``edges()`` calls — shows *charging evidence* in the same function: a
``counter``/``cost`` name (parameter, local, or attribute base), a
``data_visits``/``index_visits``/``work_sink`` attribute access, or a
``CostCounter`` construction.

Construction-time code (building an index is not a query; the paper
meters construction separately) carries an explicit inline suppression
instead, so the exemption is visible at the call site and reviewed like
code.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleContext, in_dirs, owned_nodes, rule

RULE_ID = "cost-accounting"


def _function_nodes(tree: ast.Module) -> list[ast.FunctionDef |
                                              ast.AsyncFunctionDef]:
    return [node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _adjacency_use(nodes: list[ast.AST],
                   context: ModuleContext) -> ast.AST | None:
    config = context.config
    for node in nodes:
        if isinstance(node, ast.Attribute):
            if node.attr in config.adjacency_attributes:
                return node
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in config.adjacency_methods:
            return node
    return None


def _charges(function: ast.FunctionDef | ast.AsyncFunctionDef,
             nodes: list[ast.AST], context: ModuleContext) -> bool:
    config = context.config
    arguments = function.args
    for arg in (arguments.args + arguments.posonlyargs
                + arguments.kwonlyargs):
        if arg.arg in config.charge_names:
            return True
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in config.charge_names:
            return True
        if isinstance(node, ast.Attribute) and \
                node.attr in (config.charge_attributes | config.charge_names):
            return True
    return False


@rule(RULE_ID,
      "data-graph adjacency walks charge a CostCounter in-function",
      applies=in_dirs("indexes/", "queries/evaluator.py"))
def check_cost_accounting(context: ModuleContext) -> None:
    for function in _function_nodes(context.tree):
        owned = owned_nodes(function)
        use = _adjacency_use(owned, context)
        if use is None:
            continue
        if _charges(function, owned, context):
            continue
        del use  # anchor on the def line: that is where the fix lands
        context.report(
            function, RULE_ID,
            f"'{function.name}' iterates data-graph adjacency without "
            f"charging a CostCounter; thread a counter through or "
            f"suppress with a justification if this walk is outside the "
            f"paper's cost metric")
