"""Epoch/token discipline: node state changes only on commit paths, and
serving writers always run inside an epoch write window.

Two sub-checks share this rule id (both protect the same invariant: no
consumer may observe state whose cache tokens / epoch were not bumped):

* **node-state mutation** — assignments to ``<x>.k`` / ``<x>.extent``
  (or in-place mutation of ``.extent``) and to the cache-token counters
  (``epoch`` / ``mutations`` / ``label_versions``) are only legal inside
  the ``IndexGraph`` commit paths (``replace_node``, ``_add_node``,
  maintenance registration, ``_commit_epoch``, construction).  Anything
  else bypasses the mutation counter / per-label version bumps that
  result-cache fingerprints pin — the staleness family of bugs PR 3
  flushed out dynamically, caught statically here.
* **serving write windows** — in ``serving/``, calls into
  :mod:`repro.indexes.maintenance` (``insert_subtree`` etc.) and
  refinement replays through ``self.engine.execute`` must sit lexically
  inside ``with <...>.write()`` on the epoch clock, so the document
  mutation and the epoch bump commit atomically; a writer outside the
  window publishes half-applied state to optimistic readers.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleContext, in_dirs, rule

RULE_ID = "epoch-discipline"


def _attribute_name(node: ast.expr) -> str | None:
    return node.attr if isinstance(node, ast.Attribute) else None


def _enclosing_function_name(context: ModuleContext, line: int) -> str:
    qual = context.scopes.qualname(line)
    return qual.rsplit(".", 1)[-1] if qual else ""


def _check_node_state(context: ModuleContext) -> None:
    config = context.config
    tracked = config.node_state_attributes | config.token_attributes
    for node in ast.walk(context.tree):
        flagged: str | None = None
        anchor: ast.AST = node
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                attr = _attribute_name(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = _attribute_name(target.value)
                if attr in tracked:
                    flagged = attr
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in config.mutating_methods:
            receiver = node.func.value
            attr = _attribute_name(receiver)
            if attr in config.node_state_attributes | \
                    config.token_attributes:
                flagged = attr
        if flagged is None:
            continue
        line = getattr(anchor, "lineno", 1)
        function = _enclosing_function_name(context, line)
        if function in config.node_mutator_allowlist:
            continue
        context.report(
            anchor, RULE_ID,
            f"mutation of index node state '.{flagged}' outside the "
            f"replace_node/commit paths "
            f"({', '.join(sorted(config.node_mutator_allowlist))}); "
            f"route the change through replace_node so cache tokens "
            f"and demotion bookkeeping observe it")


def _is_write_window(item: ast.withitem) -> bool:
    """True for ``with <anything>.write(...)`` items (the epoch clock)."""
    expr = item.context_expr
    return isinstance(expr, ast.Call) and \
        isinstance(expr.func, ast.Attribute) and expr.func.attr == "write"


def _self_chain(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))


def _check_serving_windows(context: ModuleContext) -> None:
    config = context.config

    def visit(node: ast.AST, inside: bool) -> None:
        if isinstance(node, ast.With):
            opens = any(_is_write_window(item) for item in node.items)
            # The with-items themselves evaluate before the window opens.
            for item in node.items:
                visit(item, inside)
            for child in node.body:
                visit(child, inside or opens)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A nested callable runs later, possibly outside the window.
            for child in ast.iter_child_nodes(node):
                visit(child, False)
            return
        if isinstance(node, ast.Call):
            _check_writer_call(node, inside)
        for child in ast.iter_child_nodes(node):
            visit(child, inside)

    def _check_writer_call(call: ast.Call, inside: bool) -> None:
        if inside:
            return
        target = context.resolve_call_target(call.func)
        if target is not None:
            module, _, member = target.rpartition(".")
            if module in config.serving_writer_modules and \
                    member in config.serving_writer_calls:
                context.report(
                    call, RULE_ID,
                    f"serving-state commit '{member}' outside a "
                    f"'with ....write()' epoch window; the mutation and "
                    f"the epoch bump must land atomically")
                return
        chain = _self_chain(call.func)
        if chain is not None and chain in config.serving_engine_chains:
            context.report(
                call, RULE_ID,
                f"writer call '{'.'.join(chain)}' outside a "
                f"'with ....write()' epoch window; refinement must "
                f"commit under the epoch clock")

    for node in context.tree.body:
        visit(node, False)


# Sub-check (b) only fires on serving/ paths; gate inside the check so
# the rule keeps a single id (suppressions and baselines stay simple).
_SERVING_SCOPE = in_dirs("serving/")


@rule(RULE_ID,
      "node state mutates only on commit paths; serving writers commit "
      "inside epoch write windows",
      applies=in_dirs("indexes/", "core/", "serving/"))
def check_epoch_discipline(context: ModuleContext) -> None:
    if not _SERVING_SCOPE(context.config, context.relpath):
        _check_node_state(context)
    else:
        _check_serving_windows(context)
