"""Lock discipline: writer-lock-guarded attributes only change under
their lock.

The registry (:data:`repro.analysis.config.GUARDED_ATTRIBUTES`) maps a
class name to its guarded attributes and the lock each one requires.
Inside any method of such a class (``__init__`` excluded — construction
happens before the object is shared), an assignment, augmented
assignment, subscript store/delete, or in-place mutating call on
``self.<attr>`` must sit lexically inside ``with self.<lock>:`` (the
lock may be one of several items of the same ``with``).  Reads stay
free: the runtime contract tolerates torn reads but not lost updates —
exactly the failure mode ``tests/test_engine_stats_threadsafe.py``
demonstrates.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping, Sequence

from repro.analysis.engine import ModuleContext, rule

RULE_ID = "lock-discipline"


def _self_attribute(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _locks_acquired(item: ast.withitem) -> str | None:
    """Lock attribute name when the with-item is ``self.<lock>``."""
    return _self_attribute(item.context_expr)


class _MethodChecker:
    def __init__(self, context: ModuleContext, class_name: str,
                 guarded: Mapping[str, str]) -> None:
        self.context = context
        self.class_name = class_name
        self.guarded = guarded

    def check(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._walk(method.body, frozenset())

    def _walk(self, statements: Sequence[ast.stmt],
              held: frozenset[str]) -> None:
        for statement in statements:
            if isinstance(statement, ast.With):
                acquired = {_locks_acquired(item)
                            for item in statement.items}
                acquired.discard(None)
                self._walk(statement.body,
                           held | {name for name in acquired
                                   if name is not None})
                continue
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                # A nested closure runs later, possibly off-thread; it
                # cannot rely on the lexically enclosing lock.
                self._walk(statement.body, frozenset())
                continue
            self._check_statement(statement, held)
            if isinstance(statement, (ast.If, ast.For, ast.While, ast.Try)):
                for attr in ("body", "orelse", "finalbody"):
                    self._walk(getattr(statement, attr, []), held)
                for handler in getattr(statement, "handlers", []):
                    self._walk(handler.body, held)

    def _check_statement(self, statement: ast.stmt,
                         held: frozenset[str]) -> None:
        if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = statement.targets if isinstance(statement, ast.Assign) \
                else [statement.target]
            for target in targets:
                self._check_write(target, statement, held)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                self._check_write(target, statement, held)
        elif isinstance(statement, ast.Expr) and \
                isinstance(statement.value, ast.Call):
            self._check_mutating_call(statement.value, statement, held)

    def _check_write(self, target: ast.expr, statement: ast.stmt,
                     held: frozenset[str]) -> None:
        # Direct store: self.attr = / += ...
        attr = _self_attribute(target)
        # Subscript store/delete: self.attr[key] = / del self.attr[key]
        if attr is None and isinstance(target, ast.Subscript):
            attr = _self_attribute(target.value)
        if attr is None or attr not in self.guarded:
            return
        required = self.guarded[attr]
        if required not in held:
            self.context.report(
                statement, RULE_ID,
                f"write to lock-guarded attribute 'self.{attr}' outside "
                f"'with self.{required}' (class {self.class_name})")

    def _check_mutating_call(self, call: ast.Call, statement: ast.stmt,
                             held: frozenset[str]) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in self.context.config.mutating_methods:
            return
        attr = _self_attribute(func.value)
        if attr is None or attr not in self.guarded:
            return
        required = self.guarded[attr]
        if required not in held:
            self.context.report(
                statement, RULE_ID,
                f"mutating call 'self.{attr}.{func.attr}(...)' outside "
                f"'with self.{required}' (class {self.class_name})")


@rule(RULE_ID,
      "writer-lock-guarded attributes only change under their lock")
def check_lock_discipline(context: ModuleContext) -> None:
    registry = context.config.guarded_attributes
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in registry:
            continue
        guarded = registry[node.name]
        checker = _MethodChecker(context, node.name, guarded)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and item.name != "__init__":
                checker.check(item)
