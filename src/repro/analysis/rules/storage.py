"""Storage I/O discipline: no whole-file slurps in ``storage/``.

The out-of-core storage layer exists so that RAM usage is governed by
the page size, the buffer-pool capacity, and the spill budget — never
by the size of the file on disk.  An argless ``.read()`` (or any
``.readlines()``) materialises the entire file in one call, silently
reintroducing the O(file) memory floor the pager was built to remove,
and it defeats the fault-injection contract too: a short read inside an
unbounded slurp has no page key to blame.

Banned in ``storage/`` (and anything scoped into it):

* ``handle.read()`` with no arguments — size every read explicitly
  (``read(length)`` after a seek, or ``readv`` through the pager);
* ``handle.readlines()`` — line-slurping a binary page file is always
  a bug, and even on text it is an unbounded allocation.

``handle.read(n)`` stays allowed: a sized read is exactly the bounded
access pattern the layer canonicalises (and the call sites must still
check the returned length — see ``PageFile.read_page``).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleContext, in_dirs, rule

RULE_ID = "storage-io"

#: Method names whose call always slurps the whole remaining file.
_ALWAYS_SLURP = ("readlines",)


def _check_whole_file_reads(context: ModuleContext) -> None:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "read" and not node.args and not node.keywords:
            context.report(
                node, RULE_ID,
                "argless '.read()' slurps the whole file and makes RAM "
                "scale with file size; size the read explicitly "
                "(read(length) after a seek, or go through the pager)")
        elif func.attr in _ALWAYS_SLURP:
            context.report(
                node, RULE_ID,
                f"'.{func.attr}()' materialises every line at once; "
                f"storage code must read bounded, explicitly sized "
                f"chunks")


@rule(RULE_ID,
      "no whole-file '.read()' / '.readlines()' slurps in the paged "
      "storage layer; every read is explicitly sized",
      applies=in_dirs("storage/"))
def check_storage_io(context: ModuleContext) -> None:
    _check_whole_file_reads(context)
