"""Rule modules for ``repro lint``; importing this package registers all
rules with :data:`repro.analysis.engine.RULES` (decorator side effect,
the same pattern the verify runner uses for oracle families)."""

from __future__ import annotations

from repro.analysis.rules import cost, determinism, epoch, lock, storage

__all__ = ["cost", "determinism", "epoch", "lock", "storage"]
