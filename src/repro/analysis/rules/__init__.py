"""Rule modules for ``repro lint``; importing this package registers all
rules with :data:`repro.analysis.engine.RULES` (decorator side effect,
the same pattern the verify runner uses for oracle families)."""

from __future__ import annotations

from repro.analysis.rules import (budget, cost, determinism, epoch, lock,
                                  lockorder, resource, storage)

__all__ = ["budget", "cost", "determinism", "epoch", "lock", "lockorder",
           "resource", "storage"]
