"""Determinism: no wall clocks, no unseeded randomness, no
set-iteration-order dependence in the replayed core.

Replay digests (``repro serve``), the differential oracle, and the
bench trajectory all assume that two runs over the same document and
workload produce byte-identical answers.  Three statically catchable
ways to break that, banned in ``core/``, ``indexes/``, ``queries/`` and
``serving/``:

* **wall-clock reads** — ``time.time`` / ``datetime.now`` etc.
  (``time.monotonic`` / ``perf_counter`` / ``sleep`` stay allowed: they
  pace and measure but must never feed answers);
* **the process-global random generator** — ``random.<anything>``
  except constructing a seeded ``random.Random``;
* **taking *one* arbitrary element of a set** — ``some_set.pop()`` or
  ``next(iter(some_set))`` where the receiver is syntactically a set
  (literal, comprehension, ``set()``/``frozenset()`` call, or a local
  most recently bound to one).  Iterating a whole set into another
  order-insensitive set is fine; picking one element depends on hash
  order, which ``PYTHONHASHSEED`` perturbs across runs for strings.
  The deterministic spellings are ``min()``/``max()``/``sorted()[0]``.

Extents are additionally held to the compact-data-plane contract:
``IndexNode.extent`` is a pre-sorted immutable int array
(:class:`repro.core.extents.Extent`), so

* **iterating a set built from an extent** (``for oid in
  set(node.extent)``, or over a set-BinOp with an extent operand)
  throws away the sorted order the array already guarantees and
  reintroduces hash-order dependence — iterate the extent directly;
* **set-method spellings** (``node.extent.intersection(...)`` etc.) do
  not exist on the array type — use the ``&``/``|``/``-`` operators or
  the merge helpers in :mod:`repro.core.extents`;
* **re-sorting** (``sorted(node.extent)``) is redundant work on every
  call — ``list(node.extent)`` is already sorted.

``src/repro/net`` is additionally held to a liveness contract: every
blocking socket receive (``recv`` and friends, ``accept``) must happen
in a function that arms a socket timeout, so a silent peer can never
wedge a server worker or survive a shutdown request — see
:func:`_check_socket_reads`.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleContext, in_dirs, owned_nodes, rule

RULE_ID = "determinism"


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)) and \
            (_is_set_expression(node.left) or _is_set_expression(node.right)):
        return True
    return False


def _set_typed_locals(nodes: list[ast.AST]) -> set[str]:
    """Names whose every assignment in the function is a set expression.

    Single-pass, flow-insensitive on purpose: a name is only trusted to
    be a set when nothing in the function rebinds it to something else,
    so the check can't false-positive on rebound names.
    """
    set_named: set[str] = set()
    rebound: set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_set_expression(node.value):
                set_named.add(name)
            else:
                rebound.add(name)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and \
                isinstance(node.target, ast.Name):
            target = node.target.id
            value = getattr(node, "value", None)
            if value is None or not _is_set_expression(value):
                rebound.add(target)
            else:
                set_named.add(target)
    return set_named - rebound


def _check_banned_calls(context: ModuleContext) -> None:
    config = context.config
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        target = context.resolve_call_target(node.func)
        if target is None:
            continue
        if target in config.banned_calls:
            context.report(
                node, RULE_ID,
                f"{config.banned_calls[target]} '{target}' is banned in "
                f"replay-deterministic code; use a seed/epoch passed in "
                f"by the caller (time.monotonic is fine for pacing)")
        elif target.startswith("random.") and \
                target.split(".", 1)[1] not in \
                config.random_allowed_members:
            context.report(
                node, RULE_ID,
                f"process-global '{target}' is unseeded and "
                f"nondeterministic; construct random.Random(seed) and "
                f"thread it through")


def _check_set_order(context: ModuleContext) -> None:
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        owned = owned_nodes(node)
        set_locals = _set_typed_locals(owned)

        def is_set(expr: ast.expr,
                   set_locals: set[str] = set_locals) -> bool:
            if _is_set_expression(expr):
                return True
            return isinstance(expr, ast.Name) and expr.id in set_locals

        for inner in owned:
            if not isinstance(inner, ast.Call):
                continue
            func = inner.func
            # <set>.pop() — one arbitrary element.
            if isinstance(func, ast.Attribute) and func.attr == "pop" \
                    and not inner.args and is_set(func.value):
                context.report(
                    inner, RULE_ID,
                    "'.pop()' on a set takes a hash-order-dependent "
                    "element; use min()/max()/sorted() to pick "
                    "deterministically")
            # next(iter(<set>)) — same thing in disguise.
            first = inner.args[0] if inner.args else None
            if isinstance(func, ast.Name) and func.id == "next" and \
                    isinstance(first, ast.Call):
                if isinstance(first.func, ast.Name) and \
                        first.func.id == "iter" and first.args \
                        and is_set(first.args[0]):
                    context.report(
                        inner, RULE_ID,
                        "'next(iter(<set>))' takes a hash-order-dependent "
                        "element; use min()/max()/sorted() to pick "
                        "deterministically")


def _mentions_extent(node: ast.AST) -> bool:
    return any(isinstance(inner, ast.Attribute) and inner.attr == "extent"
               for inner in ast.walk(node))


def _is_set_over_extent(node: ast.expr) -> bool:
    """``set(<...extent...>)`` / ``frozenset(...)``, or a set-BinOp with
    an extent mentioned in either operand."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset") and node.args and \
            _mentions_extent(node.args[0]):
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)) and \
            (_is_set_expression(node.left) or _is_set_expression(node.right)) \
            and _mentions_extent(node):
        return True
    return False


def _check_extent_order(context: ModuleContext) -> None:
    iterated: list[ast.expr] = []
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.For, ast.comprehension)):
            iterated.append(node.iter)
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # <x>.extent.intersection(...) and friends: set-method spellings
        # the array type does not provide.
        if isinstance(func, ast.Attribute) and \
                func.attr in ("intersection", "union", "difference") and \
                isinstance(func.value, ast.Attribute) and \
                func.value.attr == "extent":
            context.report(
                node, RULE_ID,
                f"'.extent.{func.attr}(...)' assumes a set-typed extent; "
                f"extents are sorted int arrays — use the &/|/- operators "
                f"or the merge helpers in repro.core.extents")
        # sorted(<x>.extent): the extent is already sorted.
        if isinstance(func, ast.Name) and func.id == "sorted" and \
                node.args and isinstance(node.args[0], ast.Attribute) and \
                node.args[0].attr == "extent":
            context.report(
                node, RULE_ID,
                "'sorted(<x>.extent)' re-sorts a pre-sorted extent array "
                "on every call; use list(<x>.extent) — it is already "
                "in ascending oid order")
    for iter_expr in iterated:
        if _is_set_over_extent(iter_expr):
            context.report(
                iter_expr, RULE_ID,
                "iterating a set built from an extent discards the sorted "
                "order the extent array already guarantees and depends on "
                "hash order; iterate the extent directly")


#: Socket receive-side calls that block until the peer sends (or
#: forever, when no timeout is armed on the socket).
_BLOCKING_SOCKET_METHODS = frozenset({"recv", "recv_into", "recvfrom",
                                      "recvfrom_into", "accept"})


def _arms_timeout(nodes: list[ast.AST]) -> bool:
    """Does this function call ``<sock>.settimeout(<non-None>)``?"""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "settimeout" \
                and node.args:
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and arg.value is None):
                return True
    return False


def _check_socket_reads(context: ModuleContext) -> None:
    """Ban unbounded blocking socket reads (``net/`` only).

    A ``.recv``/``.accept`` on a socket with no timeout armed blocks a
    server or client thread forever on a silent peer — the network
    front-end's no-wedged-workers contract (and its graceful shutdown)
    depends on every blocking read being bounded.  The check is
    per-function: a function that calls one of the blocking receive
    methods must also call ``.settimeout(<non-None>)`` before it (on
    any socket — the AST cannot track aliasing, and arming *a* timeout
    in the same function is the pattern
    :func:`repro.net.protocol.recv_exact` canonicalises).
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        owned = owned_nodes(node)
        if _arms_timeout(owned):
            continue
        for inner in owned:
            if not isinstance(inner, ast.Call):
                continue
            func = inner.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _BLOCKING_SOCKET_METHODS:
                context.report(
                    inner, RULE_ID,
                    f"blocking '.{func.attr}()' with no "
                    f"'.settimeout(...)' armed in '{node.name}' can wedge "
                    f"a thread forever on a silent peer; bound every "
                    f"socket read (see repro.net.protocol.recv_exact)")


@rule(RULE_ID,
      "no wall clocks, unseeded randomness, or set-order dependence in "
      "replay-deterministic code; no unbounded socket reads in net/",
      applies=in_dirs("core/", "indexes/", "queries/", "serving/", "net/"))
def check_determinism(context: ModuleContext) -> None:
    _check_banned_calls(context)
    _check_set_order(context)
    _check_extent_order(context)
    if "net/" in "/" + context.relpath.replace("\\", "/"):
        _check_socket_reads(context)
