"""Lock-order pass: compose per-function acquisitions into a global
lock-ordering graph; any cycle is a potential deadlock.

The Eraser-style discipline: every lock gets a stable identity
``OwnerClass.attr`` (owner = the base-most class *assigning* the
attribute, so ``ShardedStats`` methods taking ``self._lock`` map to the
``ServingStats._lock`` they actually share).  Two acquisition shapes
are classified:

* ``with self._lock:`` — attribute matching the configured lock-name
  pattern;
* ``with <recv>.clock.write():`` / ``pause_writers()`` — the seqlock's
  writer/pauser side, owned by the class holding the ``clock``.

Edges come from lexical nesting (``with A: with B:``) *and* from calls
made while a lock is held: holding ``A`` and calling ``g`` adds ``A ->
B`` for every lock ``B`` in ``g``'s transitive acquisition set (a
fixpoint over the call graph).  Witness chains are reconstructed from
the fixpoint's provenance so a cycle report names the exact call path
that closes it.  Lock *implementation* classes (``EpochClock``) are
excluded — the graph speaks in public lock identities, not the mutex
inside the seqlock.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.analysis.callgraph import FunctionNode, ProjectGraph
from repro.analysis.engine import ProjectContext, project_rule

RULE_ID = "lock-order"


def _classify(descriptor: Mapping[str, object], caller: FunctionNode,
              graph: ProjectGraph, attr_re: re.Pattern[str],
              method_groups: Mapping[str, str],
              impl_classes: frozenset[str]) -> list[str]:
    """Lock ids acquired by one ``with`` descriptor (usually 0 or 1)."""
    chain = descriptor.get("chain")
    if not isinstance(chain, list) or not chain:
        return []
    chain = [str(part) for part in chain]
    if caller.cls in impl_classes:
        return []
    if bool(descriptor.get("call")):
        method = chain[-1]
        group = method_groups.get(method)
        if group is None or len(chain) < 3 or chain[-2] != group:
            return []
        owner_elem = chain[-3]
        owners = _owner_classes(owner_elem, caller, graph)
        return [f"{graph.attr_owner(owner, group)}.{group}"
                for owner in owners]
    attr = chain[-1]
    if not attr_re.fullmatch(attr):
        return []
    receiver = chain[:-1]
    if not receiver:
        return []
    owners = _owner_classes(receiver[-1], caller, graph)
    return [f"{graph.attr_owner(owner, attr)}.{attr}"
            for owner in owners]


def _owner_classes(element: str, caller: FunctionNode,
                   graph: ProjectGraph) -> list[str]:
    if element in ("self", "cls"):
        return [caller.cls] if caller.cls is not None else []
    return list(graph.receiver_roles.get(element, ()))


def _expand_witness(start: str, lock_id: str,
                    prov: Mapping[tuple[str, str], tuple[object, ...]],
                    graph: ProjectGraph) -> list[str]:
    """Call-chain hops from ``start`` to the direct acquire of
    ``lock_id`` (each hop rendered ``Qual (path:line)``)."""
    hops: list[str] = []
    current = start
    for _ in range(32):  # defensive bound; chains are short
        entry = prov.get((current, lock_id))
        if entry is None:
            break
        node = graph.functions.get(current)
        where = f"{node.qual} ({node.path}:{entry[1]})" if node else \
            current
        hops.append(where)
        if entry[0] == "direct":
            break
        current = str(entry[2])
    return hops


@project_rule(RULE_ID,
              "the global lock-ordering graph (lexical nesting + "
              "transitive acquisitions through the call graph) must be "
              "cycle-free")
def check_lock_order(context: ProjectContext) -> None:
    config = context.config
    graph = context.graph
    attr_re = re.compile(config.lock_attribute_pattern)
    method_groups = config.lock_method_calls
    impl = config.lock_impl_classes

    # 1. Direct acquisitions (lock id, line, lock ids held outside).
    direct: dict[str, list[tuple[str, int, list[str]]]] = {}
    for key, node in graph.functions.items():
        entries: list[tuple[str, int, list[str]]] = []
        for descriptor in node.withs:
            ids = _classify(descriptor, node, graph, attr_re,
                            method_groups, impl)
            if not ids:
                continue
            held_ids: list[str] = []
            held = descriptor.get("held")
            if isinstance(held, list):
                for outer in held:
                    if isinstance(outer, dict):
                        held_ids.extend(_classify(
                            outer, node, graph, attr_re,
                            method_groups, impl))
            line = descriptor.get("line")
            for lock_id in ids:
                entries.append((lock_id,
                                line if isinstance(line, int) else 0,
                                held_ids))
        if entries:
            direct[key] = entries

    # 2. Transitive acquisition sets, with provenance for witnesses.
    locks_of: dict[str, set[str]] = {}
    prov: dict[tuple[str, str], tuple[object, ...]] = {}
    for key, entries in direct.items():
        locks_of[key] = set()
        for lock_id, line, _held in entries:
            if lock_id not in locks_of[key]:
                locks_of[key].add(lock_id)
                prov[(key, lock_id)] = ("direct", line)
    changed = True
    while changed:
        changed = False
        for key, node in graph.functions.items():
            if node.cls in impl:
                continue
            for call in node.calls:
                line = call.get("line")
                line_no = line if isinstance(line, int) else 0
                for target in graph.resolve_call(call, node):
                    target_node = graph.functions.get(target)
                    if target_node is None or target_node.cls in impl:
                        continue
                    for lock_id in locks_of.get(target, set()):
                        mine = locks_of.setdefault(key, set())
                        if lock_id not in mine:
                            mine.add(lock_id)
                            prov[(key, lock_id)] = \
                                ("call", line_no, target)
                            changed = True

    # 3. Edges: held -> acquired, lexically and through calls.
    #    edge key -> (function key, line, witness hops)
    edges: dict[tuple[str, str], tuple[str, int, list[str]]] = {}

    def add_edge(src: str, dst: str, key: str, line: int,
                 hops: list[str]) -> None:
        if (src, dst) not in edges:
            edges[(src, dst)] = (key, line, hops)

    for key, entries in direct.items():
        node = graph.functions[key]
        for lock_id, line, held_ids in entries:
            for held_id in held_ids:
                add_edge(held_id, lock_id, key, line,
                         [f"{node.qual} ({node.path}:{line})"])
    for key, node in graph.functions.items():
        if node.cls in impl:
            continue
        for call in node.calls:
            held = call.get("held")
            if not isinstance(held, list) or not held:
                continue
            held_ids: list[str] = []
            for outer in held:
                if isinstance(outer, dict):
                    held_ids.extend(_classify(
                        outer, node, graph, attr_re, method_groups,
                        impl))
            if not held_ids:
                continue
            line = call.get("line")
            line_no = line if isinstance(line, int) else 0
            for target in graph.resolve_call(call, node):
                target_node = graph.functions.get(target)
                if target_node is None or target_node.cls in impl:
                    continue
                for lock_id in locks_of.get(target, set()):
                    hops = [f"{node.qual} ({node.path}:{line_no})"]
                    hops.extend(_expand_witness(target, lock_id, prov,
                                                graph))
                    for held_id in held_ids:
                        add_edge(held_id, lock_id, key, line_no, hops)

    # 4. Self-edges: re-entry is fine on reentrant locks only.
    reentrant = config.reentrant_lock_ids
    for (src, dst), (key, line, hops) in sorted(edges.items()):
        if src == dst and src not in reentrant:
            node = graph.functions[key]
            context.report(
                node.path, line, RULE_ID,
                f"non-reentrant lock {src} may be re-acquired while "
                f"already held (via {' -> '.join(hops)}); this "
                f"self-deadlocks unless the lock is an RLock")

    # 5. Cycles among distinct locks (SCCs of the lock digraph).
    adjacency: dict[str, set[str]] = {}
    for (src, dst) in edges:
        if src != dst:
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())
    cycles = _cycle_components(adjacency)
    for component in cycles:
        ordered = sorted(component)
        witness_parts: list[str] = []
        anchor: tuple[str, int] | None = None
        for src in ordered:
            for dst in sorted(adjacency.get(src, ())):
                if dst in component and (src, dst) in edges:
                    key, line, hops = edges[(src, dst)]
                    node = graph.functions[key]
                    witness_parts.append(
                        f"{src} -> {dst} via {' -> '.join(hops)}")
                    if anchor is None:
                        anchor = (node.path, line)
        if anchor is None:  # pragma: no cover - component implies edges
            continue
        context.report(
            anchor[0], anchor[1], RULE_ID,
            f"lock-order cycle among {{{', '.join(ordered)}}}: "
            + "; ".join(witness_parts)
            + " — pick one global order and acquire in it everywhere")

    # 6. Stash the graph for ``repro lint --graph`` and CI gating.
    context.graph_report["lock_order"] = {
        "nodes": sorted({lock for pair in edges for lock in pair}),
        "edges": [
            {"from": src, "to": dst, "function": edges[(src, dst)][0],
             "line": edges[(src, dst)][1],
             "witness": edges[(src, dst)][2]}
            for (src, dst) in sorted(edges)],
        "cycles": [sorted(component) for component in cycles],
    }


def _cycle_components(adjacency: Mapping[str, set[str]],
                      ) -> list[set[str]]:
    """Strongly connected components of size > 1 (iterative Tarjan)."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = [0]

    for root in sorted(adjacency):
        if root in index_of:
            continue
        work: list[tuple[str, list[str]]] = [
            (root, sorted(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            if children:
                child = children.pop(0)
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, sorted(adjacency.get(child, ()))))
                elif child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(component)
    return components
