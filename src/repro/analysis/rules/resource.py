"""Resource-balance rule: paired acquires must release on every path.

Runs the CFG-based may-leak analysis (:mod:`repro.analysis.dataflow`)
over each function of the storage/serving/sharding/net runtime.  The
disciplines it proves are exactly the ones PR 9's pin/evict race and
the fault-injection harness exercise dynamically:

* ``BufferPool.pin`` -> ``unpin`` (a pin leaked on an exception path
  permanently blocks eviction of that page);
* ``lock.acquire`` -> ``lock.release`` outside ``with``;
* manually driven context managers (``hold = pool.hold_epoch();
  hold.__enter__()``) -> ``__exit__``;
* owned sockets (``socket.socket`` / ``socket.create_connection``
  bound to a local) -> ``close`` or an ownership transfer.

``with`` statements are trusted to balance their own items; storing a
resource on ``self``/a container, returning it, or passing it to a
callee transfers the release duty to the new owner.
"""

from __future__ import annotations

import ast

from repro.analysis import dataflow
from repro.analysis.engine import ModuleContext, in_dirs, rule


@rule("resource-balance",
      "paired acquires (pin/acquire/__enter__/socket) must release on "
      "every CFG path, exceptional paths included",
      applies=in_dirs("storage/", "serving/", "sharding/", "net/"))
def check_resource_balance(context: ModuleContext) -> None:
    pairs = dict(context.config.resource_pairs)
    ctor_calls = dict(context.config.resource_constructors)
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        violations = dataflow.analyze_resources(
            node, pairs=pairs, ctor_calls=ctor_calls,
            resolver=context.resolve_call_target)
        for violation in violations:
            obligation = violation.obligation
            if violation.exceptional and violation.normal:
                where = "normal and exception paths"
            elif violation.exceptional:
                where = "an exception path"
            else:
                where = "a normal-return path"
            if obligation.acquire in pairs:
                what = (f"{obligation.receiver}.{obligation.acquire}() "
                        f"is not matched by {obligation.receiver}."
                        f"{obligation.release}()")
            else:
                what = (f"{obligation.receiver} = "
                        f"{obligation.acquire}(...) is never "
                        f"{obligation.receiver}.{obligation.release}()d "
                        f"or handed to an owner")
            context.report(
                _line_anchor(obligation.line), "resource-balance",
                f"{what} on {where}; release it in a finally/except or "
                f"hand ownership to a context manager")


class _Anchor:
    """Minimal object carrying a ``lineno`` for ``context.report``."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno


def _line_anchor(line: int) -> _Anchor:
    return _Anchor(line)
