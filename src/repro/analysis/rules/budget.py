"""Budget/deadline-propagation pass (the PR 8 bug, caught statically).

A function *carries budget* when it has a deadline-ish parameter
(``timeout``/``deadline``/``budget``...), derives such a local, or
reads a budget-named attribute (``config.timeout``,
``request.deadline``).  From any budget-carrying function in the
``net``/``serving``/``sharding`` request path, this pass flags:

* **direct drops** — a call into a budget-*accepting* project function
  (one with a deadline-ish parameter) that forwards none of the
  caller's budget values.  Explicitly passing ``timeout=None`` /
  ``timeout=_UNSET`` is a decision, not a drop, and stays quiet;
* **drops through a helper** — a call into a budget-*blind* helper
  (no deadline parameter, no budget of its own) that transitively
  reaches a budget-accepting function: the budget cannot possibly
  arrive, whatever the helper does;
* **undecayed fan-out** — inside a configured fan-out function
  (``_fanout`` et al.), forwarding the caller's budget *parameter
  verbatim* to per-shard calls in a loop: each hop must receive the
  decremented remainder (``deadline - now``), or later shards inherit
  time already spent.

Constructors (``__init__``) are exempt sinks: stashing a deadline on a
request object is configuration, not propagation.
"""

from __future__ import annotations

from repro.analysis.callgraph import FunctionNode, ProjectGraph
from repro.analysis.engine import ProjectContext, in_dirs, project_rule

RULE_ID = "budget-propagation"

_SCOPE = in_dirs("net/", "serving/", "sharding/")

#: Transitive search depth for drop-through-helper chains.
_HELPER_DEPTH = 3


def _budget_accepting(node: FunctionNode) -> bool:
    return bool(node.budget_params) and node.name != "__init__"


def _unbudgeted_sink(graph: ProjectGraph, key: str, depth: int,
                     memo: dict[str, str | None]) -> str | None:
    """A budget-accepting function reachable from ``key`` with no budget
    forwarded anywhere along the chain (rendered as the sink's qual)."""
    if key in memo:
        return memo[key]
    memo[key] = None  # cycle guard
    node = graph.functions.get(key)
    if node is None or depth <= 0:
        return None
    for call in node.calls:
        if call.get("passes_budget"):
            continue
        for target in graph.resolve_call(call, node):
            target_node = graph.functions.get(target)
            if target_node is None:
                continue
            if _budget_accepting(target_node):
                memo[key] = target_node.qual
                return memo[key]
            if not target_node.budget_params and \
                    not target_node.has_budget:
                sink = _unbudgeted_sink(graph, target, depth - 1, memo)
                if sink is not None:
                    memo[key] = sink
                    return sink
    return None


@project_rule(RULE_ID,
              "deadline/budget values must flow intact from request "
              "handling into every query/fan-out entry point (and be "
              "decremented across fan-out hops)")
def check_budget_propagation(context: ProjectContext) -> None:
    config = context.config
    graph = context.graph
    memo: dict[str, str | None] = {}
    for key, node in sorted(graph.functions.items()):
        if not _SCOPE(config, node.path):
            continue
        if node.name in config.fanout_function_names:
            _check_fanout(context, node)
        if not node.has_budget:
            continue
        for call in node.calls:
            if call.get("passes_budget"):
                continue
            line = call.get("line")
            line_no = line if isinstance(line, int) else node.line
            targets = graph.resolve_call(call, node)
            accepting = [graph.functions[t] for t in targets
                         if _budget_accepting(graph.functions[t])]
            if accepting:
                names = ", ".join(sorted(
                    f"{t.qual}({'/'.join(t.budget_params)})"
                    for t in accepting))
                context.report(
                    node.path, line_no, RULE_ID,
                    f"{node.qual} carries a deadline/budget but this "
                    f"call forwards none of it to {names}; pass the "
                    f"remaining budget (or an explicit "
                    f"timeout=None/_UNSET if unbounded is intended)")
                continue
            for target in targets:
                target_node = graph.functions[target]
                if target_node.budget_params or target_node.has_budget:
                    continue
                sink = _unbudgeted_sink(graph, target, _HELPER_DEPTH,
                                        memo)
                if sink is not None:
                    context.report(
                        node.path, line_no, RULE_ID,
                        f"{node.qual} carries a deadline/budget but "
                        f"drops it through budget-blind helper "
                        f"{target_node.qual}, which reaches {sink} "
                        f"(a budget-accepting entry point) with "
                        f"nothing to forward")
                    break


def _check_fanout(context: ProjectContext, node: FunctionNode) -> None:
    for call in node.calls:
        if not call.get("in_loop") or not call.get("raw_budget"):
            continue
        line = call.get("line")
        line_no = line if isinstance(line, int) else node.line
        chain = call.get("chain")
        label = ".".join(str(part) for part in chain) \
            if isinstance(chain, list) else "<call>"
        context.report(
            node.path, line_no, RULE_ID,
            f"fan-out {node.qual} forwards its budget parameter "
            f"verbatim to {label} inside a loop; each hop must "
            f"receive the decremented remainder (deadline - now), or "
            f"later shards inherit time already spent")
