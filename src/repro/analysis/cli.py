"""``repro lint`` — run the discipline checker over a source tree.

Exit status: 0 when every finding is suppressed inline or matched by the
baseline (and no baseline entry is stale); 1 otherwise.  ``--format
json`` emits a machine-readable report; ``--update-baseline`` rewrites
the baseline from the current findings (each new entry carries a
``justification`` field to fill in — the baseline is for documented
false positives, not for muting real violations).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import repro
from repro.analysis import baseline as _baseline
from repro.analysis.config import LintConfig
from repro.analysis.engine import PROJECT_RULES, RULES, run_lint

DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_CACHE = ".repro-lint-cache.json"


def default_paths() -> list[str]:
    """The installed ``repro`` package itself — linting self-applies."""
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "repro package sources)")
    parser.add_argument("--baseline",
                        help=f"baseline JSON (default: ./{DEFAULT_BASELINE} "
                             f"when it exists)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--rules",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format")
    parser.add_argument("--sarif-out", metavar="PATH",
                        help="additionally write a SARIF 2.1.0 report "
                             "to PATH (for CI artifact upload)")
    parser.add_argument("--graph", action="store_true",
                        help="print the call-graph stats and lock-order "
                             "graph as JSON; exit 1 on lock-order cycles")
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help=f"analysis cache file (default: "
                             f"./{DEFAULT_CACHE}; content-hashed, safe "
                             f"to delete)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-file analysis cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rules and exit")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="also print suppressed/baselined findings")


def run_lint_cli(args: argparse.Namespace) -> int:
    # Importing the rules package populates RULES before --list-rules.
    from repro.analysis import rules as _rules  # noqa: F401

    if args.list_rules:
        registry = {**RULES, **PROJECT_RULES}
        for rule_id, registered in sorted(registry.items()):
            kind = " [project]" if rule_id in PROJECT_RULES else ""
            print(f"{rule_id}: {registered.summary}{kind}")
        return 0

    paths = args.paths if args.paths else default_paths()
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",")
                    if part.strip()]
    cache_path = None
    if not args.no_cache:
        cache_path = args.cache if args.cache else DEFAULT_CACHE
    result = run_lint(paths, config=LintConfig(), rule_ids=rule_ids,
                      cache_path=cache_path)

    if args.graph:
        json.dump(result.graph_report, sys.stdout, indent=2)
        sys.stdout.write("\n")
        lock_order = result.graph_report.get("lock_order")
        cycles = lock_order.get("cycles") \
            if isinstance(lock_order, dict) else None
        return 1 if cycles else 0

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path if baseline_path is not None \
            else DEFAULT_BASELINE
        _baseline.save_baseline(target, result.findings)
        print(f"lint: baseline with {len(result.findings)} finding(s) "
              f"written to {target}; fill in each justification field")
        return 0

    entries = _baseline.load_baseline(baseline_path) \
        if baseline_path is not None else []
    base_dir = os.path.dirname(os.path.abspath(baseline_path)) \
        if baseline_path is not None else None
    match = _baseline.apply_baseline(result.sorted_findings(), entries,
                                     base_dir=base_dir)
    unjustified = _baseline.unjustified_entries(entries)
    failed = bool(match.new or match.stale or unjustified)

    if args.sarif_out:
        with open(args.sarif_out, "w", encoding="utf-8") as handle:
            json.dump(_sarif_payload(match.new, match.baselined),
                      handle, indent=2)
            handle.write("\n")

    if args.output_format == "sarif":
        json.dump(_sarif_payload(match.new, match.baselined),
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if not failed else 1

    if args.output_format == "json":
        payload: dict[str, object] = {
            "files_checked": result.files_checked,
            "findings": [finding.as_dict() for finding in match.new],
            "baselined": [finding.as_dict()
                          for finding in match.baselined],
            "suppressed": [finding.as_dict()
                           for finding in result.suppressed],
            "stale_baseline": match.stale,
            "unjustified_baseline": unjustified,
            "cache_hits": result.cache_hits,
            "ok": not failed,
        }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if not failed else 1

    for finding in match.new:
        print(finding.format())
    if args.verbose:
        for finding in match.baselined:
            print(f"{finding.format()}  [baselined]")
        for finding in result.suppressed:
            print(f"{finding.format()}  [suppressed inline]")
    for entry in match.stale:
        print(f"lint: STALE baseline entry {entry.get('path')} "
              f"[{entry.get('rule')}] {entry.get('symbol')}: no longer "
              f"matches any finding — remove it from the baseline")
    for entry in unjustified:
        print(f"lint: UNJUSTIFIED baseline entry {entry.get('path')} "
              f"[{entry.get('rule')}] {entry.get('symbol')}: the "
              f"justification is still the generated placeholder — "
              f"explain the suppression or remove the entry")
    print(f"lint: {result.files_checked} files "
          f"({result.cache_hits} cached), "
          f"{len(match.new)} finding(s), "
          f"{len(match.baselined)} baselined, "
          f"{len(result.suppressed)} suppressed inline, "
          f"{len(match.stale)} stale baseline entr"
          f"{'y' if len(match.stale) == 1 else 'ies'}, "
          f"{len(unjustified)} unjustified")
    if failed:
        print("lint: FAILED — fix the findings, add an inline "
              "'# repro-lint: disable=<rule>' with a justification, or "
              "(false positives only) --update-baseline and fill in "
              "every justification field")
        return 1
    print("lint: OK")
    return 0


def _sarif_payload(new: list, baselined: list) -> dict:
    """Minimal SARIF 2.1.0 document: one run, one driver, new findings
    as ``error`` results and baselined ones as suppressed results."""
    from repro.analysis.engine import PROJECT_RULES, RULES

    rules_meta = []
    for rule_id, registered in sorted({**RULES, **PROJECT_RULES}.items()):
        rules_meta.append({
            "id": rule_id,
            "shortDescription": {"text": registered.summary},
        })

    def _result(finding, suppressed: bool) -> dict:
        payload: dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": (f"{finding.symbol}: " if finding.symbol
                                 else "") + finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
        }
        if suppressed:
            payload["suppressions"] = [
                {"kind": "external",
                 "justification": "documented in lint-baseline.json"}]
        return payload

    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro/docs/static-analysis",
                "rules": rules_meta,
            }},
            "results": [_result(finding, False) for finding in new]
            + [_result(finding, True) for finding in baselined],
        }],
    }
