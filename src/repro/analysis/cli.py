"""``repro lint`` — run the discipline checker over a source tree.

Exit status: 0 when every finding is suppressed inline or matched by the
baseline (and no baseline entry is stale); 1 otherwise.  ``--format
json`` emits a machine-readable report; ``--update-baseline`` rewrites
the baseline from the current findings (each new entry carries a
``justification`` field to fill in — the baseline is for documented
false positives, not for muting real violations).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import repro
from repro.analysis import baseline as _baseline
from repro.analysis.config import LintConfig
from repro.analysis.engine import RULES, run_lint

DEFAULT_BASELINE = "lint-baseline.json"


def default_paths() -> list[str]:
    """The installed ``repro`` package itself — linting self-applies."""
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "repro package sources)")
    parser.add_argument("--baseline",
                        help=f"baseline JSON (default: ./{DEFAULT_BASELINE} "
                             f"when it exists)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--rules",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rules and exit")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="also print suppressed/baselined findings")


def run_lint_cli(args: argparse.Namespace) -> int:
    # Importing the rules package populates RULES before --list-rules.
    from repro.analysis import rules as _rules  # noqa: F401

    if args.list_rules:
        for rule_id, registered in sorted(RULES.items()):
            print(f"{rule_id}: {registered.summary}")
        return 0

    paths = args.paths if args.paths else default_paths()
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",")
                    if part.strip()]
    result = run_lint(paths, config=LintConfig(), rule_ids=rule_ids)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path if baseline_path is not None \
            else DEFAULT_BASELINE
        _baseline.save_baseline(target, result.findings)
        print(f"lint: baseline with {len(result.findings)} finding(s) "
              f"written to {target}; fill in each justification field")
        return 0

    entries = _baseline.load_baseline(baseline_path) \
        if baseline_path is not None else []
    match = _baseline.apply_baseline(result.sorted_findings(), entries)
    unjustified = _baseline.unjustified_entries(entries)
    failed = bool(match.new or match.stale or unjustified)

    if args.output_format == "json":
        payload: dict[str, object] = {
            "files_checked": result.files_checked,
            "findings": [finding.as_dict() for finding in match.new],
            "baselined": [finding.as_dict()
                          for finding in match.baselined],
            "suppressed": [finding.as_dict()
                           for finding in result.suppressed],
            "stale_baseline": match.stale,
            "unjustified_baseline": unjustified,
            "ok": not failed,
        }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if not failed else 1

    for finding in match.new:
        print(finding.format())
    if args.verbose:
        for finding in match.baselined:
            print(f"{finding.format()}  [baselined]")
        for finding in result.suppressed:
            print(f"{finding.format()}  [suppressed inline]")
    for entry in match.stale:
        print(f"lint: STALE baseline entry {entry.get('path')} "
              f"[{entry.get('rule')}] {entry.get('symbol')}: no longer "
              f"matches any finding — remove it from the baseline")
    for entry in unjustified:
        print(f"lint: UNJUSTIFIED baseline entry {entry.get('path')} "
              f"[{entry.get('rule')}] {entry.get('symbol')}: the "
              f"justification is still the generated placeholder — "
              f"explain the suppression or remove the entry")
    print(f"lint: {result.files_checked} files, "
          f"{len(match.new)} finding(s), "
          f"{len(match.baselined)} baselined, "
          f"{len(result.suppressed)} suppressed inline, "
          f"{len(match.stale)} stale baseline entr"
          f"{'y' if len(match.stale) == 1 else 'ies'}, "
          f"{len(unjustified)} unjustified")
    if failed:
        print("lint: FAILED — fix the findings, add an inline "
              "'# repro-lint: disable=<rule>' with a justification, or "
              "(false positives only) --update-baseline and fill in "
              "every justification field")
        return 1
    print("lint: OK")
    return 0
