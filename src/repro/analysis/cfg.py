"""Per-function control-flow graphs for the interprocedural passes.

Built from stdlib ``ast`` only.  The graph is statement-granular: every
simple statement is one node; compound statements contribute a *head*
node carrying only their own expression part (an ``if`` head carries the
test, a ``for`` head the iterator, a ``with`` head its items) while
their blocks are flattened recursively.  Three synthetic nodes exist per
function — ``entry``, ``exit`` (normal return / fall-off) and
``raise_exit`` (exception escaping the function) — so a dataflow client
can distinguish what must hold on normal vs. exceptional termination.

Exception edges are drawn from every *may-raise* statement (anything
containing a call, ``await``, ``yield``, ``raise`` or ``assert``) to the
innermost enclosing handler dispatch or ``finally`` block, and from
there outward.  ``finally`` blocks are built once and shared between the
normal, exceptional and abrupt (``return``/``break``/``continue``)
flows that traverse them; the exit of a ``finally`` is linked only to
the continuations that were actually routed through it, which keeps the
approximation tight for the common ``try: ... finally: release()``
shape.  The one deliberate imprecision: when a single ``finally`` is
traversed by several flavours of flow, their continuations are merged
(each inbound path may reach each recorded continuation).

``repro-lint`` uses these graphs for the resource-balance pass; the
structures are intentionally generic so future passes can reuse them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "build_cfg", "may_raise", "effect_exprs"]


@dataclass
class CFGNode:
    """One CFG node: a statement (or statement head) or a synthetic."""

    index: int
    stmt: ast.stmt | None
    kind: str  # "stmt" | "entry" | "exit" | "raise-exit" | "dispatch"
    #: For "stmt" nodes of compound statements, only the head expressions
    #: belong to this node (blocks become their own nodes).
    line: int = 0


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    nodes: list[CFGNode] = field(default_factory=list)
    succs: dict[int, set[int]] = field(default_factory=dict)
    #: Subset of ``succs``: the edge is taken only when the node's own
    #: evaluation raises (dataflow clients may propagate a different
    #: state along it — e.g. an acquire that raises never acquired).
    exc_succs: dict[int, set[int]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0
    raise_exit: int = 0

    def successors(self, index: int) -> set[int]:
        return self.succs.get(index, set())

    def exc_successors(self, index: int) -> set[int]:
        return self.exc_succs.get(index, set())


#: Statement types whose own evaluation can raise even without a call.
_RAISING_STMTS = (ast.Raise, ast.Assert)


def effect_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expression parts evaluated *by the head node* of ``stmt``.

    For simple statements that is the whole statement; for compound
    statements only the controlling expressions (test / iterator / with
    items), because nested blocks are separate CFG nodes.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []  # a nested definition executes nothing from our body
    return [stmt]


def may_raise(stmt: ast.stmt) -> bool:
    """Whether the head of ``stmt`` may raise (conservatively: contains a
    call / await / yield, or is ``raise`` / ``assert``)."""
    if isinstance(stmt, _RAISING_STMTS):
        return True
    for root in effect_exprs(stmt):
        for node in ast.walk(root):
            if isinstance(node, (ast.Call, ast.Await, ast.Yield,
                                 ast.YieldFrom)):
                return True
    return False


def _catches_everything(handlers: list[ast.ExceptHandler]) -> bool:
    """True when some handler is ``except:`` / ``except BaseException`` /
    ``except Exception`` — treated as catching all for path purposes."""
    for handler in handlers:
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Name) and \
                handler.type.id in ("BaseException", "Exception"):
            return True
    return False


@dataclass
class _FinallyFrame:
    """One ``finally`` block shared by every flow routed through it."""

    entry: int
    exit_frontier: frozenset[int]
    #: Continuation chains recorded by flows routed through this block:
    #: each chain is the node ids still to traverse after the block
    #: (outer finally entries, then the ultimate target).
    continuations: list[tuple[int, ...]] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self._new(None, "entry")
        self.cfg.exit = self._new(None, "exit")
        self.cfg.raise_exit = self._new(None, "raise-exit")
        #: Innermost-last; each element is a dispatch node id or a
        #: _FinallyFrame.  Exceptions walk this outward.
        self._exc_stack: list[int | _FinallyFrame] = []
        #: Finally frames currently open, innermost-last (for abrupt
        #: jump routing).
        self._finally_stack: list[_FinallyFrame] = []
        #: All frames ever created, in creation order.
        self._frames: list[_FinallyFrame] = []
        #: (head node id, break targets list, finally depth at entry)
        self._loops: list[tuple[int, list[int], int]] = []

    # -- graph primitives -------------------------------------------------

    def _new(self, stmt: ast.stmt | None, kind: str) -> int:
        index = len(self.cfg.nodes)
        line = getattr(stmt, "lineno", 0) if stmt is not None else 0
        self.cfg.nodes.append(CFGNode(index, stmt, kind, line))
        self.cfg.succs[index] = set()
        return index

    def _link(self, preds: frozenset[int], node: int) -> None:
        for pred in preds:
            self.cfg.succs[pred].add(node)

    # -- exception / abrupt-flow routing ----------------------------------

    def _exc_chain(self) -> tuple[int, ...]:
        """Node chain an escaping exception traverses: zero or more
        finally entries, then the first dispatch (or the raise exit)."""
        chain: list[int] = []
        for element in reversed(self._exc_stack):
            if isinstance(element, _FinallyFrame):
                chain.append(element.entry)
            else:
                chain.append(element)
                return tuple(chain)
        chain.append(self.cfg.raise_exit)
        return tuple(chain)

    def _route_chain(self, source: int, chain: tuple[int, ...]) -> None:
        """Link ``source`` to ``chain[0]`` and record the rest on the
        finally frame that owns ``chain[0]`` (if any)."""
        if not chain:
            return
        self.cfg.succs[source].add(chain[0])
        if len(chain) > 1:
            frame = self._frame_by_entry(chain[0])
            if frame is not None:
                frame.continuations.append(chain[1:])

    def _frame_by_entry(self, entry: int) -> _FinallyFrame | None:
        for frame in self._frames:
            if frame.entry == entry:
                return frame
        return None

    def _abrupt_chain(self, ultimate: int,
                      fstack_floor: int) -> tuple[int, ...]:
        """Chain for return/break/continue: the finally frames above
        ``fstack_floor`` (innermost first), then ``ultimate``."""
        chain = [frame.entry
                 for frame in reversed(self._finally_stack[fstack_floor:])]
        chain.append(ultimate)
        return tuple(chain)

    # -- block construction -----------------------------------------------

    def build_block(self, stmts: list[ast.stmt],
                    preds: frozenset[int]) -> frozenset[int]:
        for stmt in stmts:
            preds = self._build_stmt(stmt, preds)
        return preds

    def _stmt_node(self, stmt: ast.stmt,
                   preds: frozenset[int]) -> int:
        node = self._new(stmt, "stmt")
        self._link(preds, node)
        if may_raise(stmt):
            chain = self._exc_chain()
            self._route_chain(node, chain)
            if chain:
                self.cfg.exc_succs.setdefault(node, set()).add(chain[0])
        return node

    def _build_stmt(self, stmt: ast.stmt,
                    preds: frozenset[int]) -> frozenset[int]:
        if isinstance(stmt, ast.If):
            head = self._stmt_node(stmt, preds)
            then = self.build_block(stmt.body, frozenset((head,)))
            orelse = self.build_block(stmt.orelse, frozenset((head,)))
            return then | orelse
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._stmt_node(stmt, preds)
            breaks: list[int] = []
            self._loops.append((head, breaks, len(self._finally_stack)))
            body_exit = self.build_block(stmt.body, frozenset((head,)))
            self._link(body_exit, head)
            self._loops.pop()
            after = self.build_block(stmt.orelse, frozenset((head,)))
            return after | frozenset(breaks)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._stmt_node(stmt, preds)
            return self.build_block(stmt.body, frozenset((head,)))
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, ast.Match):
            head = self._stmt_node(stmt, preds)
            out: frozenset[int] = frozenset((head,))
            for case in stmt.cases:
                out |= self.build_block(case.body, frozenset((head,)))
            return out
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt, preds)
            self._route_chain(node, self._abrupt_chain(self.cfg.exit, 0))
            return frozenset()
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt, preds)
            # _stmt_node already routed the exception edge.
            return frozenset()
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self._stmt_node(stmt, preds)
            if self._loops:
                head, breaks, floor = self._loops[-1]
                if isinstance(stmt, ast.Continue):
                    self._route_chain(
                        node, self._abrupt_chain(head, floor))
                else:
                    # Route through open finallys, then join the code
                    # after the loop via the breaks collector.  When no
                    # finally intervenes the node itself is the join.
                    chain = self._abrupt_chain(-1, floor)[:-1]
                    if chain:
                        self._route_chain(node, chain)
                        last = self._frame_by_entry(chain[-1])
                        if last is None:  # pragma: no cover - defensive
                            breaks.append(node)
                        else:
                            breaks.extend(last.exit_frontier)
                    else:
                        breaks.append(node)
            return frozenset()
        # Simple statement (assign, expr, pass, import, nested def, ...).
        node = self._stmt_node(stmt, preds)
        return frozenset((node,))

    def _build_try(self, stmt: ast.Try,
                   preds: frozenset[int]) -> frozenset[int]:
        frame: _FinallyFrame | None = None
        if stmt.finalbody:
            fentry_marker = len(self.cfg.nodes)
            fbody = self.build_block(stmt.finalbody, frozenset())
            if fentry_marker == len(self.cfg.nodes):
                # Empty finally (can't happen syntactically) — synth.
                fentry_marker = self._new(stmt, "stmt")
                fbody = frozenset((fentry_marker,))
            frame = _FinallyFrame(entry=fentry_marker,
                                  exit_frontier=fbody)
            self._frames.append(frame)
            self._exc_stack.append(frame)
            self._finally_stack.append(frame)

        dispatch: int | None = None
        if stmt.handlers:
            dispatch = self._new(stmt, "dispatch")
            self._exc_stack.append(dispatch)

        body_exit = self.build_block(stmt.body, preds)

        if dispatch is not None:
            self._exc_stack.pop()
        orelse_exit = self.build_block(stmt.orelse, body_exit)

        handler_exits: frozenset[int] = frozenset()
        if dispatch is not None:
            for handler in stmt.handlers:
                handler_exits |= self.build_block(
                    handler.body, frozenset((dispatch,)))
            if not _catches_everything(stmt.handlers):
                # The raised type may match no handler: propagate out.
                self._route_chain(dispatch, self._exc_chain())

        if frame is not None:
            self._exc_stack.pop()
            self._finally_stack.pop()
            normal_in = orelse_exit | handler_exits
            self._link(normal_in, frame.entry)
            return frame.exit_frontier
        return orelse_exit | handler_exits

    # -- finalisation ------------------------------------------------------

    def finish(self, body_exit: frozenset[int]) -> CFG:
        self._link(body_exit, self.cfg.exit)
        # Resolve recorded finally continuations, innermost frame first
        # (resolution may append continuations to outer frames).
        for frame in reversed(self._frames):
            seen: set[tuple[int, ...]] = set()
            index = 0
            while index < len(frame.continuations):
                chain = frame.continuations[index]
                index += 1
                if not chain or chain in seen:
                    continue
                seen.add(chain)
                for source in frame.exit_frontier:
                    self._route_chain(source, chain)
        return self.cfg


def build_cfg(function: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function body (nested defs are opaque)."""
    builder = _Builder()
    exit_frontier = builder.build_block(
        function.body, frozenset((builder.cfg.entry,)))
    return builder.finish(exit_frontier)
