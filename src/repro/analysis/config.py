"""Annotation registries and knobs driving the ``repro lint`` rules.

The registries are *seeded from the code they protect*: the writer-lock
map mirrors what :class:`repro.core.engine.EngineStats` and the
:mod:`repro.serving.engine` classes declare as lock-guarded today, the
commit-path allowlist mirrors the mutation paths
:class:`repro.indexes.base.IndexGraph` documents as the only ones that
may touch node state, and the adjacency registry names the
:class:`repro.graph.datagraph.DataGraph` accessors whose traversal the
paper's Section 5 cost metric meters.  Tests (and third-party callers)
construct their own :class:`LintConfig` to lint fixture code without
touching these defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

#: Writer-lock-guarded attributes: class name -> {attribute -> lock
#: attribute that must be held (``with self.<lock>:``) to write it}.
#: Reads stay free (the runtime contract: torn reads are tolerated,
#: lost updates are not — see ``tests/test_engine_stats_threadsafe.py``).
GUARDED_ATTRIBUTES: Mapping[str, Mapping[str, str]] = MappingProxyType({
    "EngineStats": MappingProxyType({
        "queries": "_lock", "validated_queries": "_lock",
        "refinements": "_lock", "cache_hits": "_lock",
        "cost": "_lock", "refine_cost": "_lock",
    }),
    "ServingStats": MappingProxyType({
        "queries": "_lock", "cache_hits": "_lock", "misses": "_lock",
        "conflicts": "_lock", "degraded": "_lock", "timeouts": "_lock",
        "updates": "_lock", "refinements": "_lock",
    }),
    "ShardedStats": MappingProxyType({
        "queries": "_lock", "cache_hits": "_lock", "misses": "_lock",
        "conflicts": "_lock", "degraded": "_lock", "timeouts": "_lock",
        "updates": "_lock", "refinements": "_lock", "fallbacks": "_lock",
    }),
    "ServingEngine": MappingProxyType({
        "_cache": "_cache_lock",
        "_pending": "_fup_lock", "_pending_set": "_fup_lock",
    }),
})

#: Call names that mutate a container in place (flagged on guarded
#: attributes outside their lock; also used for ``.extent`` mutations).
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popleft", "remove", "setdefault", "update",
})

#: Data-graph adjacency: property/attribute names whose *iteration* is a
#: data-node walk the paper's cost metric meters...
ADJACENCY_ATTRIBUTES = frozenset({"child_lists", "parent_lists"})
#: ... and method calls that hand out adjacency (``graph.children(oid)``,
#: ``graph.parents(oid)``, ``graph.edges()``), including the raw row
#: accessors hot loops use post-freeze and the O(1) edge probe.
ADJACENCY_METHODS = frozenset({"children", "parents", "edges",
                               "child_rows", "parent_rows", "has_edge"})

#: Evidence that a function charges (or forwards) cost: a parameter or
#: local with one of these names, an attribute access on a counter
#: component, or constructing a counter outright.
CHARGE_NAMES = frozenset({"counter", "cost", "CostCounter"})
CHARGE_ATTRIBUTES = frozenset({"data_visits", "index_visits", "work_sink"})

#: IndexGraph node state (``IndexNode.k`` / ``IndexNode.extent``) and the
#: cache-token counters; both may only change on the commit paths below.
NODE_STATE_ATTRIBUTES = frozenset({"k", "extent"})
TOKEN_ATTRIBUTES = frozenset({"epoch", "mutations", "label_versions"})

#: The only functions allowed to mutate node state or token counters —
#: the ``replace_node``/maintenance commit paths of ``IndexGraph`` (and
#: object construction).  Everything else must route through these so
#: cache fingerprints and demotion bookkeeping observe the change.
NODE_MUTATOR_ALLOWLIST = frozenset({
    "__init__", "_add_node", "_bump_label", "_commit_epoch", "demote_below",
    "insert_data_node", "register_data_edge", "replace_node",
})

#: Serving writer operations (document maintenance, engine refinement)
#: that must commit inside a ``with <...>.clock.write()`` epoch window.
SERVING_WRITER_MODULES = frozenset({"repro.indexes.maintenance"})
SERVING_WRITER_CALLS = frozenset({
    "insert_subtree", "insert_xml_fragment", "add_reference",
})
#: ``self``-relative call chains that replay refinement through the
#: wrapped engine (also writer-side).
SERVING_ENGINE_CHAINS = frozenset({("self", "engine", "execute")})

#: Wall-clock reads banned where replay digests and the differential
#: oracle require run-to-run determinism.  ``time.monotonic`` /
#: ``time.perf_counter`` / ``time.sleep`` stay allowed: they pace and
#: measure, but their values must never reach answers or digests.
BANNED_CALLS: Mapping[str, str] = MappingProxyType({
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
})

#: ``random.<member>`` calls that do NOT share the process-global
#: unseeded generator (constructing a seeded generator is the fix).
RANDOM_ALLOWED_MEMBERS = frozenset({"Random"})


@dataclass(frozen=True)
class LintConfig:
    """All knobs for one lint run (defaults mirror the repo's contracts)."""

    guarded_attributes: Mapping[str, Mapping[str, str]] = field(
        default_factory=lambda: GUARDED_ATTRIBUTES)
    mutating_methods: frozenset[str] = MUTATING_METHODS
    adjacency_attributes: frozenset[str] = ADJACENCY_ATTRIBUTES
    adjacency_methods: frozenset[str] = ADJACENCY_METHODS
    charge_names: frozenset[str] = CHARGE_NAMES
    charge_attributes: frozenset[str] = CHARGE_ATTRIBUTES
    node_state_attributes: frozenset[str] = NODE_STATE_ATTRIBUTES
    token_attributes: frozenset[str] = TOKEN_ATTRIBUTES
    node_mutator_allowlist: frozenset[str] = NODE_MUTATOR_ALLOWLIST
    serving_writer_modules: frozenset[str] = SERVING_WRITER_MODULES
    serving_writer_calls: frozenset[str] = SERVING_WRITER_CALLS
    serving_engine_chains: frozenset[tuple[str, ...]] = SERVING_ENGINE_CHAINS
    banned_calls: Mapping[str, str] = field(
        default_factory=lambda: BANNED_CALLS)
    random_allowed_members: frozenset[str] = RANDOM_ALLOWED_MEMBERS
    #: Extra per-rule scope tokens merged into each rule's defaults (so a
    #: config can pull, say, ``storage/`` into the determinism net).
    extra_scope_tokens: tuple[str, ...] = field(default_factory=tuple)
