"""Annotation registries and knobs driving the ``repro lint`` rules.

The registries are *seeded from the code they protect*: the writer-lock
map mirrors what :class:`repro.core.engine.EngineStats` and the
:mod:`repro.serving.engine` classes declare as lock-guarded today, the
commit-path allowlist mirrors the mutation paths
:class:`repro.indexes.base.IndexGraph` documents as the only ones that
may touch node state, and the adjacency registry names the
:class:`repro.graph.datagraph.DataGraph` accessors whose traversal the
paper's Section 5 cost metric meters.  Tests (and third-party callers)
construct their own :class:`LintConfig` to lint fixture code without
touching these defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

#: Writer-lock-guarded attributes: class name -> {attribute -> lock
#: attribute that must be held (``with self.<lock>:``) to write it}.
#: Reads stay free (the runtime contract: torn reads are tolerated,
#: lost updates are not — see ``tests/test_engine_stats_threadsafe.py``).
GUARDED_ATTRIBUTES: Mapping[str, Mapping[str, str]] = MappingProxyType({
    "EngineStats": MappingProxyType({
        "queries": "_lock", "validated_queries": "_lock",
        "refinements": "_lock", "cache_hits": "_lock",
        "cost": "_lock", "refine_cost": "_lock",
    }),
    "ServingStats": MappingProxyType({
        "queries": "_lock", "cache_hits": "_lock", "misses": "_lock",
        "conflicts": "_lock", "degraded": "_lock", "timeouts": "_lock",
        "updates": "_lock", "refinements": "_lock",
    }),
    "ShardedStats": MappingProxyType({
        "queries": "_lock", "cache_hits": "_lock", "misses": "_lock",
        "conflicts": "_lock", "degraded": "_lock", "timeouts": "_lock",
        "updates": "_lock", "refinements": "_lock", "fallbacks": "_lock",
    }),
    "ServingEngine": MappingProxyType({
        "_cache": "_cache_lock",
        "_pending": "_fup_lock", "_pending_set": "_fup_lock",
    }),
})

#: Call names that mutate a container in place (flagged on guarded
#: attributes outside their lock; also used for ``.extent`` mutations).
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popleft", "remove", "setdefault", "update",
})

#: Data-graph adjacency: property/attribute names whose *iteration* is a
#: data-node walk the paper's cost metric meters...
ADJACENCY_ATTRIBUTES = frozenset({"child_lists", "parent_lists"})
#: ... and method calls that hand out adjacency (``graph.children(oid)``,
#: ``graph.parents(oid)``, ``graph.edges()``), including the raw row
#: accessors hot loops use post-freeze and the O(1) edge probe.
ADJACENCY_METHODS = frozenset({"children", "parents", "edges",
                               "child_rows", "parent_rows", "has_edge"})

#: Evidence that a function charges (or forwards) cost: a parameter or
#: local with one of these names, an attribute access on a counter
#: component, or constructing a counter outright.
CHARGE_NAMES = frozenset({"counter", "cost", "CostCounter"})
CHARGE_ATTRIBUTES = frozenset({"data_visits", "index_visits", "work_sink"})

#: IndexGraph node state (``IndexNode.k`` / ``IndexNode.extent``) and the
#: cache-token counters; both may only change on the commit paths below.
NODE_STATE_ATTRIBUTES = frozenset({"k", "extent"})
TOKEN_ATTRIBUTES = frozenset({"epoch", "mutations", "label_versions"})

#: The only functions allowed to mutate node state or token counters —
#: the ``replace_node``/maintenance commit paths of ``IndexGraph`` (and
#: object construction).  Everything else must route through these so
#: cache fingerprints and demotion bookkeeping observe the change.
NODE_MUTATOR_ALLOWLIST = frozenset({
    "__init__", "_add_node", "_bump_label", "_commit_epoch", "demote_below",
    "insert_data_node", "register_data_edge", "replace_node",
})

#: Serving writer operations (document maintenance, engine refinement)
#: that must commit inside a ``with <...>.clock.write()`` epoch window.
SERVING_WRITER_MODULES = frozenset({"repro.indexes.maintenance"})
SERVING_WRITER_CALLS = frozenset({
    "insert_subtree", "insert_xml_fragment", "add_reference",
})
#: ``self``-relative call chains that replay refinement through the
#: wrapped engine (also writer-side).
SERVING_ENGINE_CHAINS = frozenset({("self", "engine", "execute")})

#: Wall-clock reads banned where replay digests and the differential
#: oracle require run-to-run determinism.  ``time.monotonic`` /
#: ``time.perf_counter`` / ``time.sleep`` stay allowed: they pace and
#: measure, but their values must never reach answers or digests.
BANNED_CALLS: Mapping[str, str] = MappingProxyType({
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
})

#: ``random.<member>`` calls that do NOT share the process-global
#: unseeded generator (constructing a seeded generator is the fix).
RANDOM_ALLOWED_MEMBERS = frozenset({"Random"})

# ---------------------------------------------------------------------------
# Interprocedural pass registries (call graph / CFG passes, PR 10)
# ---------------------------------------------------------------------------

#: Paired resource methods the resource-balance pass proves balanced on
#: every CFG path: acquire method -> the release that discharges it.
#: ``__enter__``/``__exit__`` covers manually driven context managers
#: (``hold = pool.hold_epoch(); hold.__enter__()``).
RESOURCE_PAIRS: Mapping[str, str] = MappingProxyType({
    "pin": "unpin",
    "acquire": "release",
    "__enter__": "__exit__",
})

#: Constructors whose result is an owned OS resource: import-resolved
#: dotted call -> the method that releases it.  Binding the result to a
#: local opens an obligation; storing/returning/passing it transfers
#: ownership instead.
RESOURCE_CONSTRUCTORS: Mapping[str, str] = MappingProxyType({
    "socket.socket": "close",
    "socket.create_connection": "close",
})

#: Reviewed receiver-name -> candidate-classes map used to resolve
#: ``<receiver>.<method>()`` calls whose receiver is not ``self``.  The
#: names mirror this repo's conventions (``shard.serving``, ``self.pool``,
#: ``conn.send_lock`` ...); unknown receivers resolve to nothing, so
#: widening coverage is a config review, not a heuristic change.
RECEIVER_ROLES: Mapping[str, tuple[str, ...]] = MappingProxyType({
    "serving": ("ServingEngine",),
    "_serving": ("ServingEngine",),
    "sharded": ("ShardedEngine",),
    "engine": ("AdaptiveIndexEngine", "ServingEngine", "ShardedEngine"),
    "_engine": ("ServingEngine", "ShardedEngine"),
    "clock": ("EpochClock",),
    "stats": ("EngineStats", "ServingStats", "ShardedStats"),
    "pool": ("BufferPool",),
    "_pool": ("BufferPool",),
    "pools": (),
    "file": ("PageFile",),
    "conn": ("_Connection",),
    "shard": ("_Shard",),
    "client": ("NetClient",),
    "server": ("IndexServer",),
})

#: Attribute names that *are* locks: ``with self.<attr>:`` on a match
#: becomes a lock-order graph node ``<OwnerClass>.<attr>`` (owner = the
#: base-most class assigning the attribute).
LOCK_ATTRIBUTE_PATTERN = r"^_?[a-z_]*(lock|mutex)$"

#: Call-shaped lock acquisitions: ``with <recv>.clock.write():`` and
#: ``pause_writers`` enter the seqlock's writer side; both classify as
#: the ``<OwnerClass>.clock`` node keyed by the receiver before
#: ``clock`` (``self`` -> enclosing class, else the role map).
LOCK_METHOD_CALLS: Mapping[str, str] = MappingProxyType({
    "write": "clock",
    "pause_writers": "clock",
})

#: Classes that *implement* a lock: their internal acquisitions (the
#: seqlock's ``_mutex``) are excluded from composition so the graph
#: speaks in terms of the public lock, not its implementation detail.
LOCK_IMPL_CLASSES = frozenset({"EpochClock"})

#: Lock nodes backed by an ``RLock`` (or reentrant seqlock writer):
#: self-edges on these are legal re-entry, not self-deadlock.
REENTRANT_LOCK_IDS = frozenset({
    "ServingEngine.clock", "ShardedEngine.clock", "ServingStats._lock",
})

#: Functions that fan a query out to multiple downstream engines: inside
#: these, forwarding a budget *parameter verbatim* in a loop repeats the
#: PR 8 deadline bug (each hop must receive the decremented remainder).
FANOUT_FUNCTION_NAMES = frozenset({"_fanout", "fanout", "scatter"})


@dataclass(frozen=True)
class LintConfig:
    """All knobs for one lint run (defaults mirror the repo's contracts)."""

    guarded_attributes: Mapping[str, Mapping[str, str]] = field(
        default_factory=lambda: GUARDED_ATTRIBUTES)
    mutating_methods: frozenset[str] = MUTATING_METHODS
    adjacency_attributes: frozenset[str] = ADJACENCY_ATTRIBUTES
    adjacency_methods: frozenset[str] = ADJACENCY_METHODS
    charge_names: frozenset[str] = CHARGE_NAMES
    charge_attributes: frozenset[str] = CHARGE_ATTRIBUTES
    node_state_attributes: frozenset[str] = NODE_STATE_ATTRIBUTES
    token_attributes: frozenset[str] = TOKEN_ATTRIBUTES
    node_mutator_allowlist: frozenset[str] = NODE_MUTATOR_ALLOWLIST
    serving_writer_modules: frozenset[str] = SERVING_WRITER_MODULES
    serving_writer_calls: frozenset[str] = SERVING_WRITER_CALLS
    serving_engine_chains: frozenset[tuple[str, ...]] = SERVING_ENGINE_CHAINS
    banned_calls: Mapping[str, str] = field(
        default_factory=lambda: BANNED_CALLS)
    random_allowed_members: frozenset[str] = RANDOM_ALLOWED_MEMBERS
    resource_pairs: Mapping[str, str] = field(
        default_factory=lambda: RESOURCE_PAIRS)
    resource_constructors: Mapping[str, str] = field(
        default_factory=lambda: RESOURCE_CONSTRUCTORS)
    receiver_roles: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: RECEIVER_ROLES)
    lock_attribute_pattern: str = LOCK_ATTRIBUTE_PATTERN
    lock_method_calls: Mapping[str, str] = field(
        default_factory=lambda: LOCK_METHOD_CALLS)
    lock_impl_classes: frozenset[str] = LOCK_IMPL_CLASSES
    reentrant_lock_ids: frozenset[str] = REENTRANT_LOCK_IDS
    fanout_function_names: frozenset[str] = FANOUT_FUNCTION_NAMES
    #: Extra per-rule scope tokens merged into each rule's defaults (so a
    #: config can pull, say, ``storage/`` into the determinism net).
    extra_scope_tokens: tuple[str, ...] = field(default_factory=tuple)

    def fingerprint(self) -> str:
        """Stable digest of every registry — part of the analysis-cache
        key, so editing the config invalidates cached results."""
        import hashlib

        def _stable(value: object) -> object:
            if isinstance(value, Mapping):
                return sorted((str(k), _stable(v))
                              for k, v in value.items())
            if isinstance(value, (frozenset, set)):
                return sorted(str(v) for v in value)
            if isinstance(value, tuple):
                return [_stable(v) for v in value]
            return str(value)

        import dataclasses
        import json
        payload = {f.name: _stable(getattr(self, f.name))
                   for f in dataclasses.fields(self)}
        text = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()
