"""Test-only runtime complement to the static lock-order pass.

The static pass (``repro.analysis.rules.lockorder``) proves ordering
over the calls it can resolve; callback indirection (the buffer pool's
miss listener, injected ``client_io`` hooks) is invisible to it.  This
recorder closes that gap dynamically: wrap the real locks under their
*static identities* (``"ServingStats._lock"``), run a stressy
interleaving, and assert the union of statically derived and observed
acquisition edges is still acyclic.  A cycle in the union is exactly
the deadlock neither view can prove alone — the static graph
contributes orders from paths the test never hit, the observed edges
contribute orders the resolver could not see.

Nothing in here is imported by production code; the overhead (a
thread-local stack push per acquire) exists only under tests.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

__all__ = ["LockOrderRecorder", "find_cycle", "assert_order_consistent"]


class _RecordingLock:
    """Context-manager/acquire-release proxy feeding one recorder."""

    def __init__(self, recorder: "LockOrderRecorder", lock: object,
                 lock_id: str) -> None:
        self._recorder = recorder
        self._lock = lock
        self._id = lock_id

    def acquire(self, *args: object, **kwargs: object) -> bool:
        acquired = bool(self._lock.acquire(*args, **kwargs))  # type: ignore[attr-defined]
        if acquired:
            self._recorder.note_acquire(self._id)
        return acquired

    def release(self) -> None:
        self._lock.release()  # type: ignore[attr-defined]
        self._recorder.note_release(self._id)

    def __enter__(self) -> "_RecordingLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


class LockOrderRecorder:
    """Observed lock-acquisition-order edges across all threads.

    Each thread keeps a stack of held lock ids; acquiring ``B`` while
    ``A`` is held records the edge ``A -> B``.  Re-acquiring the id on
    top of the same thread's stack (reentrant use) records nothing.
    """

    def __init__(self) -> None:
        self._edges: set[tuple[str, str]] = set()
        self._held = threading.local()
        self._mutex = threading.Lock()
        #: Total successful acquisitions (sanity signal that the wrapped
        #: locks were actually exercised by the test's interleaving).
        self.acquisitions = 0

    def wrap(self, lock: object, lock_id: str) -> _RecordingLock:
        """Proxy ``lock`` so every acquisition is recorded as
        ``lock_id`` (use the static pass's ``Owner.attr`` identity)."""
        return _RecordingLock(self, lock, lock_id)

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquire(self, lock_id: str) -> None:
        stack = self._stack()
        outer = [held for held in stack if held != lock_id]
        with self._mutex:
            self.acquisitions += 1
            if outer:
                self._edges.update((held, lock_id) for held in outer)
        stack.append(lock_id)

    def note_release(self, lock_id: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == lock_id:
                del stack[index]
                return

    def edges(self) -> set[tuple[str, str]]:
        with self._mutex:
            return set(self._edges)


def find_cycle(edges: Iterable[tuple[str, str]]) -> list[str] | None:
    """A lock cycle in the edge set, as ``[a, b, ..., a]``; else None."""
    adjacency: dict[str, set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    trail: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GREY
        trail.append(node)
        for succ in sorted(adjacency[node]):
            if color[succ] == GREY:
                return trail[trail.index(succ):] + [succ]
            if color[succ] == WHITE:
                found = visit(succ)
                if found is not None:
                    return found
        trail.pop()
        color[node] = BLACK
        return None

    for root in sorted(adjacency):
        if color[root] == WHITE:
            found = visit(root)
            if found is not None:
                return found
    return None


def assert_order_consistent(
        static_edges: Iterable[tuple[str, str]],
        observed_edges: Iterable[tuple[str, str]],
        reentrant: Iterable[str] = ()) -> None:
    """Fail if static ∪ observed acquisition orders admit a deadlock.

    Self-edges on ids declared ``reentrant`` (RLocks) are legal re-entry
    and dropped before the check; any other self-edge, and any cycle
    across the merged edge sets, raises ``AssertionError`` naming it.
    """
    reentrant_ids = set(reentrant)
    merged: set[tuple[str, str]] = set()
    for src, dst in list(static_edges) + list(observed_edges):
        if src == dst:
            if src not in reentrant_ids:
                raise AssertionError(
                    f"non-reentrant lock {src} re-acquired while held")
            continue
        merged.add((src, dst))
    cycle = find_cycle(merged)
    if cycle is not None:
        raise AssertionError(
            "lock-order cycle across static+observed edges: "
            + " -> ".join(cycle))
