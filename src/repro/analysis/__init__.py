"""Static discipline checker for the repro codebase (``repro lint``).

A zero-dependency, stdlib-``ast``-based rule engine that checks the
project's own source for violations of the invariants its runtime
disciplines rely on:

* ``lock-discipline`` — writer-lock-guarded attributes only change
  under their lock (:mod:`repro.analysis.rules.lock`);
* ``cost-accounting`` — data-graph adjacency walks charge a
  :class:`~repro.cost.counters.CostCounter`
  (:mod:`repro.analysis.rules.cost`);
* ``epoch-discipline`` — index node state mutates only on
  ``replace_node``/commit paths, and serving writers commit inside
  epoch write windows (:mod:`repro.analysis.rules.epoch`);
* ``determinism`` — no wall clocks, unseeded randomness, or
  set-iteration-order dependence in replayed code
  (:mod:`repro.analysis.rules.determinism`).

See ``docs/static-analysis.md`` for the invariant each rule protects
and the runtime check it complements.  New rules register with the
:func:`~repro.analysis.engine.rule` decorator; inline suppressions use
``# repro-lint: disable=<rule>`` and documented false positives live in
the checked-in baseline (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.config import LintConfig
from repro.analysis.engine import (
    RULES,
    Finding,
    LintResult,
    ModuleContext,
    in_dirs,
    lint_file,
    rule,
    run_lint,
)

__all__ = [
    "Finding", "LintConfig", "LintResult", "ModuleContext", "RULES",
    "apply_baseline", "in_dirs", "lint_file", "load_baseline", "rule",
    "run_lint", "save_baseline",
]
