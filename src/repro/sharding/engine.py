"""The sharded index service: N shard engines behind one combiner.

:class:`ShardedEngine` splits a document across ``num_shards`` shards by
deterministic subtree-hash placement (:mod:`repro.sharding.placement`).
Each shard owns a local :class:`~repro.graph.datagraph.DataGraph` — the
replicated spine plus its owned placement units — with its own index
family behind a :class:`~repro.serving.engine.ServingEngine`, so every
shard keeps the full snapshot-isolation protocol it already had when it
was the whole database.

The combiner adds one more :class:`~repro.serving.snapshot.EpochClock`
on top:

* **readers** fan a query to every shard under an optimistic combiner
  read and merge the per-shard answers with the compact data plane's
  sorted-extent union kernel — each shard's local oids map to global
  oids through a monotone table, so its sorted local answer maps to a
  sorted global run and the merge is pure
  :func:`~repro.core.extents.extent_union`;
* queries that could traverse a **cross-shard edge** (an edge leaving a
  placement unit — detected conservatively from the query's label
  pairs) are answered exactly on the combiner's global mirror graph
  under the writer mutex, counted as ``fallbacks`` in the stats;
* **writers** update the global mirror first (allocating the same oids
  a single-shard engine would, which is what makes the replay digests
  comparable), then route the update to the owning shard and append an
  immutable :class:`~repro.sharding.segments.Segment` to its log;
* the **compactor** (:meth:`compact`, or the background thread started
  by :meth:`start_compactor`) drains a shard's refinement backlog,
  re-freezes its graph, and retires its segment run — one combiner
  epoch per shard merge.

Completeness rests on placement: every tree path from the root lies
inside one shard (the spine is replicated everywhere), so a query
instance can only escape its shard by traversing an edge that *leaves*
a placement unit.  All such edges are recorded as cross edges, and any
query whose label sequence could match one falls back to the exact
global path.  Soundness is free: every shard graph is a subgraph of the
document, so a local match is a global match.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from array import array
from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.core.extents import Extent, extent_union
from repro.cost.counters import CostCounter
from repro.graph.datagraph import DataGraph, EdgeKind
from repro.indexes import maintenance as _maintenance
from repro.indexes.maintenance import SubtreeSpec
from repro.indexes.mstarindex import MStarIndex
from repro.queries.evaluator import evaluate_on_data_graph
from repro.queries.pathexpr import PathExpression, WILDCARD, as_expression
from repro.serving.engine import (_UNSET, ServedResult, ServingEngine,
                                  ServingStats)
from repro.serving.snapshot import EpochClock
from repro.sharding.placement import (Placement, SPINE, compute_placement,
                                      shard_of_key, structural_key)
from repro.sharding.segments import SegmentLog


class ShardedStats(ServingStats):
    """Serving stats plus combiner-specific counters.

    ``fallbacks`` counts queries answered on the exact global path
    because their label sequence could match a cross-shard edge (these
    are also counted under ``degraded``, matching the single-engine
    convention that any locked-oracle answer is a degraded one).  The
    fallback flag rides on the :class:`ServedResult` itself and lands
    in the same lock acquisition as every other per-result counter, so
    a concurrent :meth:`snapshot` can never observe ``fallbacks``
    running ahead of ``degraded`` or ``queries``.
    """

    _FIELDS = ServingStats._FIELDS + ("fallbacks",)

    def __init__(self) -> None:
        super().__init__()
        self.fallbacks = 0

    def record_result(self, result: ServedResult) -> None:
        with self._lock:
            super().record_result(result)
            if result.fallback:
                self.fallbacks += 1


class _Shard:
    """One shard: local graph + serving engine + oid maps + segment log."""

    __slots__ = ("shard_id", "serving", "to_global", "g2l", "log")

    def __init__(self, shard_id: int, serving: ServingEngine,
                 to_global: list[int], g2l: dict[int, int]) -> None:
        self.shard_id = shard_id
        self.serving = serving
        #: local oid -> global oid; strictly ascending (locals are
        #: allocated in ascending global order, inserts append), which
        #: is what keeps mapped answers sorted for ``extent_union``.
        self.to_global = to_global
        self.g2l = g2l
        self.log = SegmentLog(base_records=len(to_global))


def _build_local_graph(graph: DataGraph,
                       members: list[int]) -> tuple[DataGraph, dict[int, int]]:
    """The shard-local subgraph over ``members`` (ascending global oids).

    Nodes are added in ascending global order so the local->global map
    is monotone; edges keep their kinds and their child-row order (a
    subsequence of the global row).
    """
    local = DataGraph()
    g2l: dict[int, int] = {}
    for gid in members:
        g2l[gid] = local.add_node(graph.label(gid))
    rows = graph.child_rows()
    kinds = getattr(graph, "_edge_kinds")
    for gid in members:
        local_parent = g2l[gid]
        for child in rows[gid]:
            child = int(child)
            local_child = g2l.get(child)
            if local_child is not None:
                kind = kinds.get((gid, child), EdgeKind.REGULAR)
                local.add_edge(local_parent, local_child, kind=kind)
    local.root = g2l[graph.root]
    return local.freeze(), g2l


class _ShardedSnapshot:
    """Pinned view of the combiner (see :meth:`ShardedEngine.pin`)."""

    def __init__(self, engine: "ShardedEngine", epoch: int) -> None:
        self._engine = engine
        self.epoch = epoch

    def oracle(self, expr: "PathExpression | str") -> set[int]:
        """Ground truth at the pinned epoch (global mirror navigation)."""
        return evaluate_on_data_graph(self._engine.graph,
                                      as_expression(expr))

    def query(self, expr: "PathExpression | str") -> set[int]:
        """Fan the query out at the pinned epoch; returns global oids."""
        expr = as_expression(expr)
        if self._engine._crosses(expr):
            return self.oracle(expr)
        answers, _, _, _ = self._engine._fanout(expr)
        return answers


class _ShardedPin:
    """Context manager backing :meth:`ShardedEngine.pin`."""

    def __init__(self, engine: "ShardedEngine") -> None:
        self._engine = engine
        self._cm = None

    def __enter__(self) -> _ShardedSnapshot:
        self._cm = self._engine.clock.pause_writers()
        epoch = self._cm.__enter__()
        return _ShardedSnapshot(self._engine, epoch)

    def __exit__(self, *exc: object) -> bool:
        cm, self._cm = self._cm, None
        return bool(cm.__exit__(*exc))


class ShardedEngine:
    """N shard serving engines behind one epoch-clocked combiner.

    Duck-types the reader/writer surface of
    :class:`~repro.serving.engine.ServingEngine` (``query``, ``serve``,
    ``insert_subtree``, ``add_reference``, ``refine_pending``, ``pin``,
    ``stats``, ``epoch``), so workload replay, the CLI, and the bench
    drivers run unchanged against it.

    ``graph`` is the combiner's *global mirror*: the authoritative
    whole document, used for cross-shard fallback queries, pinned
    oracles, and oid allocation (updates hit the mirror first so global
    oids match what a single-shard engine would assign).
    """

    def __init__(self, graph: DataGraph, num_shards: int,
                 index_factory: "Callable[..., Any]" = MStarIndex, *,
                 cache: bool = True,
                 max_attempts: int = 6,
                 default_timeout: float | None = None,
                 parallel_build: bool = True,
                 now: "Callable[[], float] | None" = None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.graph = graph
        self.num_shards = num_shards
        self.max_attempts = max_attempts
        self.default_timeout = default_timeout
        self._now = time.monotonic if now is None else now
        self.placement: Placement = compute_placement(graph, num_shards)
        self.clock = EpochClock()
        self.stats = ShardedStats()
        self.construction_s = 0.0

        started = time.perf_counter()
        member_lists = [self.placement.members(s) for s in range(num_shards)]

        def build(shard_id: int) -> _Shard:
            members = member_lists[shard_id]
            local, g2l = _build_local_graph(graph, members)
            serving = ServingEngine(local, index_factory=index_factory,
                                    cache=cache, max_attempts=max_attempts)
            return _Shard(shard_id, serving, list(members), g2l)

        if parallel_build and num_shards > 1:
            with ThreadPoolExecutor(max_workers=num_shards) as pool:
                self._shards = list(pool.map(build, range(num_shards)))
        else:
            self._shards = [build(s) for s in range(num_shards)]
        self.construction_s = time.perf_counter() - started

        # Cross edges: every edge leaving a placement unit.  A query
        # instance can only span two shards by traversing one, so the
        # label pairs below are exactly what the router must screen for.
        owner = self.placement.owner
        rows = graph.child_rows()
        self._cross_pairs: set[tuple[str, str]] = set()
        self._num_cross_edges = 0
        for source in range(graph.num_nodes):
            who = owner[source]
            if who == SPINE:
                continue
            for target in rows[source]:
                target = int(target)
                if owner[target] != who:
                    self._cross_pairs.add((graph.label(source),
                                           graph.label(target)))
                    self._num_cross_edges += 1

        # Structural keys of spine nodes, for placing units inserted
        # later under a spine parent.  The spine never grows (new nodes
        # always land inside a unit), so this cache is complete.
        self._spine_keys: dict[int, str] = {}
        tree_parent = self._spine_tree_parents()
        for oid, who in enumerate(owner):
            if who == SPINE:
                structural_key(graph, oid, tree_parent, self._spine_keys)

        self._compactor: threading.Thread | None = None
        self._compactor_stop = threading.Event()

    def _spine_tree_parents(self) -> dict[int, int]:
        """Tree parents of spine nodes (REGULAR edges, first reach wins)."""
        owner = self.placement.owner
        rows = self.graph.child_rows()
        kinds = getattr(self.graph, "_edge_kinds")
        tree_parent: dict[int, int] = {}
        frontier = [self.graph.root]
        seen = {self.graph.root}
        while frontier:
            next_frontier: list[int] = []
            for oid in frontier:
                for child in rows[oid]:
                    child = int(child)
                    if child in seen or owner[child] != SPINE:
                        continue
                    if kinds.get((oid, child),
                                 EdgeKind.REGULAR) is not EdgeKind.REGULAR:
                        continue
                    seen.add(child)
                    tree_parent[child] = oid
                    next_frontier.append(child)
            frontier = next_frontier
        return tree_parent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Committed combiner writer operations (updates + compactions)."""
        return self.clock.epoch

    @property
    def supports_updates(self) -> bool:
        return all(shard.serving.supports_updates for shard in self._shards)

    @property
    def index(self) -> Any:
        """Shard 0's index (family introspection; shards are homogeneous)."""
        return self._shards[0].serving.index

    @property
    def shards(self) -> list[_Shard]:
        return self._shards

    @property
    def num_cross_edges(self) -> int:
        return self._num_cross_edges

    def shard_stats(self) -> list[dict]:
        """Per-shard size/serving/segment bookkeeping for reports."""
        out = []
        for shard in self._shards:
            stats = {"shard": shard.shard_id,
                     "nodes": len(shard.to_global),
                     "serving": shard.serving.stats.snapshot()}
            stats.update(shard.log.stats())
            out.append(stats)
        return out

    # ------------------------------------------------------------------
    # Reader path
    # ------------------------------------------------------------------
    def _crosses(self, expr: PathExpression) -> bool:
        """Could an instance of ``expr`` traverse a cross-shard edge?

        Conservative: a descendant step can hide arbitrary labels, so
        any cross edge at all routes those to the fallback; otherwise
        the expression's consecutive label pairs (wildcards match
        anything) are screened against the recorded cross-edge pairs.
        """
        if not self._cross_pairs:
            return False
        if expr.descendant_steps:
            return True
        labels = expr.labels
        for position in range(1, len(labels)):
            step_from = labels[position - 1]
            step_to = labels[position]
            for edge_from, edge_to in self._cross_pairs:
                if ((step_from == WILDCARD or step_from == edge_from)
                        and (step_to == WILDCARD or step_to == edge_to)):
                    return True
        return False

    def _fanout(self, expr: PathExpression, deadline: float | None = None,
                ) -> "tuple[set[int], bool, bool, CostCounter]":
        """Query every shard and union the answers in global-oid space.

        ``deadline`` bounds the *total* fan-out: every shard query gets
        the budget **remaining** at the moment it starts (a slow shard
        eats into its successors' budgets), never the caller's full
        timeout reapplied per shard.  Without a deadline the ``_UNSET``
        sentinel is passed through unchanged, so each shard engine
        applies its own ``default_timeout`` exactly as if it were
        queried directly — this is the shared sentinel from
        :mod:`repro.serving.engine`, not a combiner-private copy.
        """
        cost = CostCounter()
        merged: Extent | None = None
        validated = False
        cache_hit = True
        for shard in self._shards:
            if deadline is None:
                budget = _UNSET
            else:
                budget = max(deadline - self._now(), 0.0)
            result = shard.serving.query(expr, timeout=budget)
            cost.add(result.cost)
            validated = validated or result.validated
            cache_hit = cache_hit and result.cache_hit
            if result.answers:
                to_global = shard.to_global
                run = array("i", [to_global[local]
                                  for local in sorted(result.answers)])
                extent = Extent.from_sorted(run)
                merged = extent if merged is None else \
                    extent_union(merged, extent)
        answers = set() if merged is None else merged.to_set()
        return answers, validated, cache_hit, cost

    def query(self, expr: "PathExpression | str",
              timeout: float | None = _UNSET) -> ServedResult:
        """Answer one query with combiner-level snapshot isolation.

        Non-crossing queries fan out to every shard under an optimistic
        combiner read (retried on writer conflicts, exactly like a
        single serving engine); crossing queries — and fan-outs that
        exhaust their retries — are answered exactly on the global
        mirror under the writer mutex.
        """
        expr = as_expression(expr)
        timeout = self.default_timeout if timeout is _UNSET else timeout
        started = self._now()
        deadline = started + timeout if timeout is not None else None
        result = self._query_inner(expr, deadline)
        finished = self._now()
        result.duration_s = finished - started
        # Same single-place classification as ServingEngine.query: the
        # combiner decides ``timed_out`` once the result is final.
        result.timed_out = deadline is not None and finished >= deadline
        self.stats.record_result(result)
        return result

    def _query_inner(self, expr: PathExpression,
                     deadline: float | None) -> ServedResult:
        if self._crosses(expr):
            return self._global_query(expr, attempts=1, conflicts=0,
                                      fallback=True)
        conflicts = 0
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            clean, seq = self.clock.read()
            if clean:
                answers, validated, cache_hit, cost = self._fanout(
                    expr, deadline)
                if self.clock.validate(seq):
                    return ServedResult(
                        expr=expr, answers=answers, validated=validated,
                        epoch=seq // 2, cost=cost, attempts=attempts,
                        conflicts=conflicts, cache_hit=cache_hit)
            conflicts += 1
            if deadline is not None and self._now() >= deadline:
                break
            time.sleep(0 if conflicts < 2 else min(0.0002 * conflicts, 0.002))
        return self._global_query(expr, attempts=attempts,
                                  conflicts=conflicts)

    def _global_query(self, expr: PathExpression, attempts: int,
                      conflicts: int, fallback: bool = False) -> ServedResult:
        with self.clock.pause_writers() as epoch:
            cost = CostCounter()
            answers = evaluate_on_data_graph(self.graph, expr, cost)
        # ``timed_out`` is classified by ``query`` once the result is
        # final; the exact path only marks *how* it was answered.
        return ServedResult(expr=expr, answers=answers, validated=True,
                            epoch=epoch, cost=cost, attempts=attempts,
                            conflicts=conflicts, degraded=True,
                            fallback=fallback)

    def serve(self, queries: "Iterable[PathExpression | str]",
              workers: int = 4, timeout: float | None = _UNSET,
              client_io: "Callable[[ServedResult], None] | None" = None,
              ) -> list[ServedResult]:
        """Answer a batch on ``workers`` threads; results in input order.

        Same contract as :meth:`ServingEngine.serve` — ``client_io``
        runs on the worker thread, worker exceptions re-raise after the
        batch drains.
        """
        exprs = [as_expression(q) for q in queries]
        if not exprs:
            return []
        if workers < 1:
            raise ValueError("workers must be >= 1")
        results: list[ServedResult | None] = [None] * len(exprs)
        work: _queue.SimpleQueue = _queue.SimpleQueue()
        for item in enumerate(exprs):
            work.put(item)
        errors: list[BaseException] = []

        def run() -> None:
            while True:
                try:
                    position, expr = work.get_nowait()
                except _queue.Empty:
                    return
                try:
                    result = self.query(expr, timeout=timeout)
                    results[position] = result
                    if client_io is not None:
                        client_io(result)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

        threads = [threading.Thread(target=run, name=f"shard-combiner-{i}",
                                    daemon=True)
                   for i in range(min(workers, len(exprs)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Writer path
    # ------------------------------------------------------------------
    def _owner_for_insert(self, parent_gid: int, new_root_gid: int,
                          label: str) -> int:
        """Which shard absorbs a subtree inserted under ``parent_gid``.

        Inside a unit the subtree stays with the unit's shard.  Under a
        spine parent it *is* a fresh placement unit: its structural key
        extends the parent's spine key with the same ``label[ordinal]``
        rule :func:`compute_placement` uses, so placement of later
        inserts is exactly as deterministic as the initial build.
        """
        who = self.placement.owner[parent_gid]
        if who != SPINE:
            return who
        ordinal = 0
        for sibling in self.graph.children(parent_gid):
            sibling = int(sibling)
            if sibling == new_root_gid:
                break
            if self.graph.label(sibling) == label:
                ordinal += 1
        key = f"{self._spine_keys[parent_gid]}/{label}[{ordinal}]"
        self.placement.unit_keys[new_root_gid] = key
        return shard_of_key(key, self.num_shards)

    def insert_subtree(self, parent_oid: int,
                       subtree: SubtreeSpec) -> list[int]:
        """Insert ``(label, [children])`` under global oid ``parent_oid``.

        One combiner write window covers the mirror mutation, the
        placement extension, the owning shard's (index-maintaining)
        insert, and the segment append — a combiner reader sees none of
        it or all of it.  Returns the new *global* oids, matching what
        a single-shard engine would have allocated.
        """
        with self.clock.write() as epoch:
            new_gids = _maintenance.insert_subtree(
                self.graph, parent_oid, subtree, indexes=())
            who = self._owner_for_insert(parent_oid, new_gids[0], subtree[0])
            self.placement.owner.extend([who] * len(new_gids))
            shard = self._shards[who]
            local_parent = shard.g2l[parent_oid]
            new_lids = shard.serving.insert_subtree(local_parent, subtree)
            for gid, lid in zip(new_gids, new_lids):
                shard.g2l[gid] = lid
                shard.to_global.append(gid)
            shard.log.append("insert_subtree",
                             (parent_oid, subtree, tuple(new_gids)), epoch)
        self.stats.record_update()
        return new_gids

    def add_reference(self, source_oid: int, target_oid: int) -> None:
        """Add an IDREF edge between existing global oids.

        The edge is materialised in every shard that holds both
        endpoints (one shard normally; all of them for spine-to-spine).
        An edge leaving a placement unit exists in no single shard with
        both roles intact — it becomes a *cross edge*: recorded on the
        mirror, its label pair added to the router's screen so affected
        queries take the exact global path.
        """
        with self.clock.write() as epoch:
            _maintenance.add_reference(self.graph, source_oid, target_oid,
                                       indexes=())
            owner = self.placement.owner
            who_source = owner[source_oid]
            who_target = owner[target_oid]
            if who_source == SPINE and who_target == SPINE:
                targets = range(self.num_shards)
            elif who_source == SPINE:
                targets = (who_target,)
            elif who_target == SPINE or who_target == who_source:
                targets = (who_source,)
            else:
                targets = ()
            for shard_id in targets:
                shard = self._shards[shard_id]
                shard.serving.add_reference(shard.g2l[source_oid],
                                            shard.g2l[target_oid])
            if who_source != SPINE and who_target != who_source:
                self._cross_pairs.add((self.graph.label(source_oid),
                                       self.graph.label(target_oid)))
                self._num_cross_edges += 1
            log_shard = who_source if who_source != SPINE else (
                who_target if who_target != SPINE else 0)
            self._shards[log_shard].log.append(
                "add_reference", (source_oid, target_oid), epoch)
        self.stats.record_update()

    def refine_pending(self, limit: int | None = None) -> int:
        """Drain shard refinement backlogs; returns refinements applied.

        Each shard refines through its own serving engine (its own
        write windows), so shard readers stay live; the combiner clock
        is untouched — refinement never changes answers, only cost.
        """
        applied = 0
        for shard in self._shards:
            remaining = None if limit is None else limit - applied
            if remaining is not None and remaining <= 0:
                break
            count = shard.serving.refine_pending(remaining)
            applied += count
            for _ in range(count):
                self.stats.record_refinement()
        return applied

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, shard_id: int | None = None) -> dict[str, int]:
        """Fold segment runs into shard base packs.

        Per shard, inside **one combiner epoch**: drain the shard's
        refinement backlog (re-refining its index against everything
        the segments delivered), re-freeze its graph into the compact
        CSR form, and retire the segment run.  Compaction is
        semantically invisible to readers — answers cannot change, only
        representation and cost.
        """
        shards = self._shards if shard_id is None \
            else [self._shards[shard_id]]
        merged = 0
        refined = 0
        compactions = 0
        for shard in shards:
            with self.clock.write() as epoch:
                refined += shard.serving.refine_pending()
                with shard.serving.clock.write():
                    shard.serving.graph.freeze()
                retired = shard.log.compact(epoch)
            if retired:
                compactions += 1
            merged += retired
        return {"segments_merged": merged, "refinements": refined,
                "compactions": compactions}

    def start_compactor(self, interval_s: float = 0.05,
                        min_pending: int = 1) -> None:
        """Run the compactor on a background thread until
        :meth:`stop_compactor`.

        Each sweep compacts only shards with at least ``min_pending``
        segments.  Background compaction advances the combiner epoch at
        its own rhythm, so digest-determinism checks should compact
        manually instead.
        """
        if self._compactor is not None:
            raise RuntimeError("compactor already running")
        self._compactor_stop.clear()

        def run() -> None:
            while not self._compactor_stop.wait(interval_s):
                for shard in self._shards:
                    if shard.log.pending() >= min_pending:
                        self.compact(shard.shard_id)

        self._compactor = threading.Thread(target=run, name="shard-compactor",
                                           daemon=True)
        self._compactor.start()

    def stop_compactor(self) -> None:
        """Stop the background compactor (no-op when not running)."""
        compactor, self._compactor = self._compactor, None
        if compactor is not None:
            self._compactor_stop.set()
            compactor.join()

    # ------------------------------------------------------------------
    # Pinned snapshots
    # ------------------------------------------------------------------
    def pin(self) -> _ShardedPin:
        """Context manager yielding a pinned combiner snapshot.

        Combiner writers queue behind the pin; shard writers only run
        inside combiner write windows, so the whole fleet is quiescent
        for the pin's holder.
        """
        return _ShardedPin(self)

    def __repr__(self) -> str:
        sizes = self.placement.shard_sizes()
        return (f"ShardedEngine(shards={self.num_shards}, "
                f"epoch={self.clock.epoch}, "
                f"owned_nodes={sizes}, "
                f"cross_edges={self._num_cross_edges})")
