"""Append-only update segments and per-shard pack bookkeeping.

Each shard's state is *pack-structured*, borrowing the shape (not the
bytes) of pack-based storage engines: a **base pack** — the index/graph
state as of the last compaction — plus an ordered run of immutable
**segments**, one per committed update, recording what changed and at
which combiner epoch.  Readers never consult segments (the shard's
live index already reflects them); segments exist so the compactor can
tell how much un-merged history a shard has accumulated, and so tests
and benches can audit exactly which updates each shard absorbed.

Compaction (:meth:`SegmentLog.compact`) folds the segment run into the
base pack: the caller drains the shard's refinement backlog and
re-freezes its graph, then the log retires the merged segments and
remembers the epoch.  Each compaction is one epoch of the combiner's
:class:`~repro.serving.snapshot.EpochClock` — see
:meth:`repro.sharding.engine.ShardedEngine.compact`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Segment:
    """One committed update, immutable once appended.

    ``kind`` is ``"insert_subtree"`` or ``"add_reference"``; ``payload``
    is the update's arguments plus its results (new global oids for
    inserts), enough to replay or audit the shard's history.
    """

    seqno: int
    kind: str
    payload: tuple
    epoch: int


@dataclass
class SegmentLog:
    """Ordered segments atop a base pack, with compaction totals."""

    base_records: int = 0
    segments: list[Segment] = field(default_factory=list)
    retired: int = 0
    compactions: int = 0
    last_compaction_epoch: int = -1
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def append(self, kind: str, payload: tuple, epoch: int) -> Segment:
        """Record one committed update as a fresh immutable segment."""
        with self._lock:
            segment = Segment(seqno=self.base_records + self.retired
                              + len(self.segments),
                              kind=kind, payload=payload, epoch=epoch)
            self.segments.append(segment)
            return segment

    def pending(self) -> int:
        """Segments accumulated since the last compaction."""
        with self._lock:
            return len(self.segments)

    def compact(self, epoch: int) -> int:
        """Fold the segment run into the base pack; returns how many
        segments were retired."""
        with self._lock:
            merged = len(self.segments)
            self.retired += merged
            self.segments.clear()
            if merged:
                self.compactions += 1
                self.last_compaction_epoch = epoch
            return merged

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "pending_segments": len(self.segments),
                "retired_segments": self.retired,
                "compactions": self.compactions,
                "last_compaction_epoch": self.last_compaction_epoch,
            }
