"""Sharded, pack-structured index service.

Partitions a document into N shards by deterministic subtree-hash
placement (:mod:`repro.sharding.placement`), gives each shard its own
index family over its own freezable :class:`~repro.graph.datagraph.DataGraph`,
and fronts the fleet with a combiner (:class:`ShardedEngine`) that fans
queries out and merges the per-shard answers with the compact data
plane's sorted-extent union kernel.  Updates append immutable segment
records per shard (:mod:`repro.sharding.segments`); a compactor drains
refinement backlogs, re-freezes shard graphs, and retires segments, one
epoch per shard merge.  See ``docs/sharding.md``.
"""

from repro.sharding.engine import ShardedEngine
from repro.sharding.placement import Placement, compute_placement
from repro.sharding.segments import Segment, SegmentLog

__all__ = [
    "Placement",
    "Segment",
    "SegmentLog",
    "ShardedEngine",
    "compute_placement",
]
