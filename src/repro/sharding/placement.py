"""Deterministic subtree-hash placement of document regions onto shards.

The documents this project indexes are trees plus IDREF edges, usually
with a thin *spine* near the root (XMark's single ``site`` element, its
handful of section children) fanning out into many similar subtrees
(items, persons, datasets).  Placement works at the first tree depth
wide enough to spread load:

* the **unit depth** is the smallest depth whose node count reaches
  ``max(2 * num_shards, MIN_UNITS)`` (falling back to the widest level
  of a shallow document);
* every node strictly above the unit depth is **spine** and is
  replicated into every shard — spine nodes are few, and replicating
  them means each shard holds the full root-to-unit tree path, so any
  tree path instance of a simple path expression lies entirely inside
  one shard;
* every subtree rooted at the unit depth is a **placement unit**, owned
  by exactly one shard.

A unit's shard is chosen by hashing its *structural key* — the label
path from the root with per-parent sibling ordinals, e.g.
``site[0]/regions[0]/africa[1]`` — through SHA-256.  The key depends
only on document structure and insertion order, never on Python hash
seeds, memory addresses, or subtree size, so the same document history
always lands every unit on the same shard, and a subtree may grow
without migrating.

Only unit-to-unit IDREF edges can cross shards (an edge with a spine
endpoint is materialisable in the other endpoint's shard, since spine
is everywhere).  The combiner records those as cross edges and routes
potentially-affected queries to the global fallback path; see
:mod:`repro.sharding.engine`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.graph.datagraph import DataGraph, EdgeKind

#: Placement wants at least this many units even for tiny shard counts,
#: so load spreads beyond a handful of giant subtrees.
MIN_UNITS = 8

#: Owner value marking a spine node (replicated into every shard).
SPINE = -1


def shard_of_key(key: str, num_shards: int) -> int:
    """Map a structural key to a shard id (stable SHA-256 placement)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass
class Placement:
    """Where every node of a document lives.

    ``owner[oid]`` is the owning shard id, or :data:`SPINE` for
    replicated spine nodes.  ``unit_depth`` is the tree depth of unit
    roots; ``unit_keys`` maps each unit root oid to its structural key
    (the hash preimage, kept for diagnostics and for assigning keys to
    units inserted later).
    """

    num_shards: int
    unit_depth: int
    owner: list[int]
    unit_keys: dict[int, str] = field(default_factory=dict)

    def members(self, shard: int) -> list[int]:
        """Global oids present in ``shard`` (spine + owned), ascending."""
        return [oid for oid, who in enumerate(self.owner)
                if who == shard or who == SPINE]

    def shard_sizes(self) -> list[int]:
        """Owned (non-replicated) node count per shard."""
        sizes = [0] * self.num_shards
        for who in self.owner:
            if who != SPINE:
                sizes[who] += 1
        return sizes


def _tree_rows(graph: DataGraph) -> list[list[int]]:
    """Child rows restricted to tree (REGULAR) edges."""
    rows = graph.child_rows()
    kinds = getattr(graph, "_edge_kinds")
    if not kinds:
        return [list(rows[oid]) for oid in range(graph.num_nodes)]
    out: list[list[int]] = []
    for oid in range(graph.num_nodes):
        out.append([int(child) for child in rows[oid]
                    if (oid, int(child)) not in kinds
                    or kinds[(oid, int(child))] is EdgeKind.REGULAR])
    return out


def structural_key(graph: DataGraph, oid: int,
                   tree_parent: dict[int, int],
                   cache: dict[int, str]) -> str:
    """``label[ordinal]`` path from the root down to ``oid``.

    The ordinal counts earlier same-label siblings in the parent's
    child-row order (insertion order), which is identical across runs
    that applied the same update history.
    """
    cached = cache.get(oid)
    if cached is not None:
        return cached
    label = graph.label(oid)
    parent = tree_parent.get(oid)
    if parent is None:
        key = f"{label}[0]"
    else:
        ordinal = 0
        for sibling in graph.children(parent):
            sibling = int(sibling)
            if sibling == oid:
                break
            if graph.label(sibling) == label:
                ordinal += 1
        key = (f"{structural_key(graph, parent, tree_parent, cache)}"
               f"/{label}[{ordinal}]")
    cache[oid] = key
    return key


def compute_placement(graph: DataGraph, num_shards: int) -> Placement:
    """Assign every node of ``graph`` to a shard (or the spine).

    Deterministic in the document's structure: two graphs built by the
    same insertion/update history get byte-identical placements.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    rows = _tree_rows(graph)
    root = graph.root

    # Level-by-level tree walk to find the unit depth.
    levels: list[list[int]] = [[root]]
    tree_parent: dict[int, int] = {}
    seen = {root}
    want = max(2 * num_shards, MIN_UNITS)
    while True:
        next_level: list[int] = []
        for oid in levels[-1]:
            for child in rows[oid]:
                if child not in seen:
                    seen.add(child)
                    tree_parent[child] = oid
                    next_level.append(child)
        if not next_level:
            break
        levels.append(next_level)
        if len(next_level) >= want:
            break
    if len(levels) == 1:
        # A root with no tree children: everything is spine.
        return Placement(num_shards=num_shards, unit_depth=1,
                         owner=[SPINE] * graph.num_nodes)
    # Deepest computed level is the widest candidate we reached; shallow
    # documents that never hit ``want`` shard at their widest frontier.
    unit_depth = len(levels) - 1

    owner = [SPINE] * graph.num_nodes
    key_cache: dict[int, str] = {}
    unit_keys: dict[int, str] = {}
    for unit_root in levels[unit_depth]:
        key = structural_key(graph, unit_root, tree_parent, key_cache)
        unit_keys[unit_root] = key
        shard = shard_of_key(key, num_shards)
        # Claim the whole subtree (tree edges only; IDREFs do not move
        # ownership).  In a tree every node below the unit root is
        # reached exactly once; the owner guard keeps the walk linear
        # and deterministic even if a generator produced a tree-edge
        # DAG (units are processed in level order).
        stack = [unit_root]
        owner[unit_root] = shard
        while stack:
            node = stack.pop()
            for child in rows[node]:
                if owner[child] == SPINE and child != root:
                    owner[child] = shard
                    stack.append(child)
    return Placement(num_shards=num_shards, unit_depth=unit_depth,
                     owner=owner, unit_keys=unit_keys)
