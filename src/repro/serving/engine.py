"""Snapshot-isolated concurrent serving on top of the adaptive engine.

:class:`ServingEngine` wraps an :class:`~repro.core.engine.AdaptiveIndexEngine`
and splits its single-threaded operating loop into two concurrent roles:

* **readers** answer queries on worker threads through an optimistic
  seqlock protocol (:mod:`repro.serving.snapshot`): each answer is
  guaranteed to reflect exactly the index/document state of one
  committed epoch — never a half-applied REFINE, never a stale ``k``
  clamp mid-demotion;
* **writers** (document maintenance via
  :mod:`repro.indexes.maintenance`, and FUP refinement replayed through
  the wrapped engine) run one at a time inside
  :meth:`EpochClock.write` windows, advancing the epoch atomically at
  commit.

Readers that keep colliding with writers (or run out of their deadline)
**degrade instead of failing**: the query is answered on the data-graph
oracle path under the writer mutex, which is always correct — the
fallback trades latency for exactness, never exactness for latency.

The engine-level result cache is reused through the index's
``cache_fingerprint`` tokens (PR 2): a token pins the per-label
versions, mutation counters, and the maintenance ``epoch`` of every
component, so a cached answer can never be served across a document
update — the property-based test suite asserts exactly this.

Worker threads buy *overlap*, not CPU parallelism: under CPython's GIL
the index evaluation serialises, but the per-query client I/O a real
deployment pays (request parsing, response writing, pager reads)
overlaps freely.  ``docs/serving.md`` covers worker-count tuning.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.engine import AdaptiveIndexEngine
from repro.core.fup import FupExtractor
from repro.cost.counters import CostCounter
from repro.graph.datagraph import DataGraph
from repro.indexes import maintenance as _maintenance
from repro.indexes.base import QueryResult
from repro.indexes.maintenance import SubtreeSpec
from repro.indexes.mstarindex import MStarIndex
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.queries.evaluator import evaluate_on_data_graph
from repro.queries.pathexpr import PathExpression, as_expression
from repro.serving.snapshot import EpochClock

if TYPE_CHECKING:
    from repro.storage.pager import BufferPool

#: Sentinel distinguishing "no timeout given" from "timeout=None".
#: Typed ``Any`` so ``timeout: float | None = _UNSET`` keeps the
#: sentinel default without widening every public signature.
_UNSET: Any = object()


@dataclass
class ServedResult:
    """One answered query, tagged with its snapshot provenance.

    ``epoch`` identifies the committed state the answer reflects;
    ``conflicts`` counts optimistic attempts discarded because a writer
    committed underneath them; ``degraded`` marks answers computed on
    the data-graph oracle path under the writer mutex (still exact);
    ``timed_out`` marks results returned after their deadline passed
    (the answer is still correct — the serving layer never trades
    exactness for latency).
    """

    expr: PathExpression
    answers: set[int]
    validated: bool
    epoch: int
    cost: CostCounter = field(default_factory=CostCounter)
    attempts: int = 1
    conflicts: int = 0
    cache_hit: bool = False
    degraded: bool = False
    timed_out: bool = False
    #: Set by the sharded combiner: the query was routed to the exact
    #: global path because it could traverse a cross-shard edge (every
    #: fallback answer is also a degraded one, never the reverse).
    fallback: bool = False
    duration_s: float = 0.0


class ServingStats:
    """Thread-safe running totals for one serving engine.

    Every counter derived from one result moves inside a *single* lock
    acquisition, so any :meth:`snapshot` (the stats RPC reads through
    it) observes a consistent state in which

    * ``queries == cache_hits + misses`` — every answered query is
      exactly one of the two, and
    * ``timeouts <= queries`` / ``degraded <= queries`` — per-result
      flags can never outrun the query count.

    The lock is reentrant so subclasses (``ShardedStats``) can extend
    :meth:`record_result` and keep their extra counters inside the same
    atomic step; ``tests/test_stats_consistency.py`` hammers exactly
    these invariants from concurrent readers.
    """

    _FIELDS = ("queries", "cache_hits", "misses", "conflicts", "degraded",
               "timeouts", "updates", "refinements")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.queries = 0
        self.cache_hits = 0
        self.misses = 0
        self.conflicts = 0
        self.degraded = 0
        self.timeouts = 0
        self.updates = 0
        self.refinements = 0

    def record_result(self, result: ServedResult) -> None:
        with self._lock:
            self.queries += 1
            self.conflicts += result.conflicts
            if result.cache_hit:
                self.cache_hits += 1
            else:
                self.misses += 1
            if result.degraded:
                self.degraded += 1
            if result.timed_out:
                self.timeouts += 1

    def record_update(self) -> None:
        with self._lock:
            self.updates += 1

    def record_refinement(self) -> None:
        with self._lock:
            self.refinements += 1

    def snapshot(self) -> dict[str, int]:
        """A mutually consistent copy of every counter."""
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:
        return f"ServingStats({self.snapshot()})"


class _CacheEntry:
    __slots__ = ("token", "answers", "validated", "epoch")

    def __init__(self, token: tuple, answers: frozenset[int],
                 validated: bool, epoch: int) -> None:
        self.token = token
        self.answers = answers
        self.validated = validated
        self.epoch = epoch


class PinnedSnapshot:
    """A reader that pins the current epoch by excluding writers.

    Yielded by :meth:`ServingEngine.pin`; while it is open, every query
    (index path or oracle path) observes exactly the pinned epoch —
    writers queue behind the mutex until the pin is released.  This is
    what the stress suite's oracle and the epoch-boundary regression
    tests use to ask "what was true at epoch ``e``" while concurrent
    updates are in flight.
    """

    def __init__(self, serving: "ServingEngine", epoch: int,
                 page_epochs: tuple[int, ...] = ()) -> None:
        self._serving = serving
        self.epoch = epoch
        #: Buffer-pool epochs held for the pin's lifetime — one per pool
        #: attached via :meth:`ServingEngine.attach_page_pool`.  While
        #: the pin is open no attached pool evicts, so every page this
        #: snapshot reads stays resident at exactly these epochs.
        self.page_epochs = page_epochs

    def query(self, expr: "PathExpression | str") -> QueryResult:
        """Evaluate through the index at the pinned epoch."""
        return self._serving.index.query(as_expression(expr))

    def oracle(self, expr: "PathExpression | str") -> set[int]:
        """Ground truth at the pinned epoch (data-graph navigation)."""
        return evaluate_on_data_graph(self._serving.graph,
                                      as_expression(expr))


class ServingEngine:
    """Concurrent, snapshot-isolated front end for an adaptive engine.

    Example::

        serving = ServingEngine(graph)            # wraps M*(k) engine
        results = serving.serve(queries, workers=4)
        serving.insert_subtree(0, ("item", [("name", [])]))
        serving.refine_pending()                  # adapt to observed FUPs

    Readers (:meth:`query`, :meth:`serve`) are safe from any thread;
    writers (:meth:`insert_subtree`, :meth:`add_reference`,
    :meth:`refine_pending`) serialise on the internal epoch clock.
    """

    def __init__(self, source: "AdaptiveIndexEngine | DataGraph",
                 index_factory: "Callable[..., Any]" = MStarIndex, *,
                 extractor: FupExtractor | None = None,
                 max_attempts: int = 6,
                 default_timeout: float | None = None,
                 cache: bool = True, cache_size: int = 1024,
                 now: "Callable[[], float] | None" = None) -> None:
        """Wrap an existing engine, or build one over ``source`` graph.

        ``max_attempts`` bounds optimistic retries before a query
        degrades to the locked oracle path; ``default_timeout`` (seconds)
        applies to queries that do not pass their own.  ``cache``
        controls the serving-layer result cache (token-guarded, shared
        across workers); the wrapped engine's own cache stays whatever
        it was configured with (it only runs under the writer lock).
        ``now`` replaces the monotonic clock deadlines are measured on —
        only tests should pass it (a fake clock is how the deadline
        boundary is pinned deterministically).
        """
        if isinstance(source, AdaptiveIndexEngine):
            self.engine = source
        else:
            self.engine = AdaptiveIndexEngine(source,
                                              index_factory=index_factory,
                                              cache=cache)
        self.graph = self.engine.graph
        self.index = self.engine.index
        self.extractor = extractor if extractor is not None else FupExtractor()
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.default_timeout = default_timeout
        self._now = time.monotonic if now is None else now
        self.stats = ServingStats()
        self.clock = EpochClock()
        self._fingerprint = getattr(self.index, "cache_fingerprint", None)
        self.cache_enabled = cache and self._fingerprint is not None
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self._cache_size = cache_size
        self._cache: dict[PathExpression, _CacheEntry] = {}
        self._cache_lock = threading.Lock()
        self._fup_lock = threading.Lock()
        self._pending: deque[PathExpression] = deque()
        self._pending_set: set[PathExpression] = set()
        #: Buffer pools whose eviction epoch pinned snapshots hold (see
        #: :meth:`attach_page_pool`).
        self._page_pools: list = []
        self._family = type(self.index).__name__
        self._bind_metrics()

    def attach_page_pool(self, pool: "BufferPool") -> None:
        """Register a storage-layer :class:`BufferPool` with this engine.

        While a :meth:`pin` is open, every attached pool holds its
        eviction epoch (``BufferPool.hold_epoch``): pages the snapshot
        reads stay resident until the pin is released, so a pinned
        reader can re-touch an extent page without re-paying the read —
        and without a concurrent scan evicting it mid-snapshot.
        """
        self._page_pools.append(pool)

    def _bind_metrics(self) -> None:
        registry = _metrics.REGISTRY
        queries = registry.counter(
            "serving_queries_total", "queries answered by the serving layer",
            ("index", "outcome"))
        self._m_ok = queries.labels(index=self._family, outcome="ok")
        self._m_degraded = queries.labels(index=self._family,
                                          outcome="degraded")
        self._m_conflicts = registry.counter(
            "serving_conflicts_total",
            "optimistic read attempts discarded due to concurrent commits",
            ("index",)).labels(index=self._family)
        self._m_timeouts = registry.counter(
            "serving_timeouts_total",
            "queries that blew their deadline before answering",
            ("index",)).labels(index=self._family)
        self._m_cache_hits = registry.counter(
            "serving_cache_hits_total", "serving-layer result-cache hits",
            ("index",)).labels(index=self._family)
        self._m_updates = registry.counter(
            "serving_updates_total", "committed writer operations",
            ("index", "kind"))
        self._m_queue_depth = registry.gauge(
            "serving_queue_depth", "queries waiting for a worker")
        self._m_epoch = registry.gauge(
            "serving_epoch", "committed epoch of the serving engine",
            ("index",)).labels(index=self._family)
        self._m_attempts = registry.histogram(
            "serving_query_attempts",
            "optimistic attempts needed per served query", ("index",),
            buckets=(1, 2, 3, 4, 6, 8, 12, 16)).labels(index=self._family)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Number of committed writer operations."""
        return self.clock.epoch

    @property
    def supports_updates(self) -> bool:
        """Can the wrapped index take document updates (vs rebuild-only)?"""
        return _maintenance.maintainable(self.index)

    def pending_fups(self) -> list[PathExpression]:
        """Expressions queued for refinement, oldest first."""
        with self._fup_lock:
            return list(self._pending)

    # ------------------------------------------------------------------
    # Reader path
    # ------------------------------------------------------------------
    def query(self, expr: "PathExpression | str",
              timeout: float | None = _UNSET) -> ServedResult:
        """Answer one query with snapshot isolation.

        Optimistic attempts retry on writer conflicts up to
        ``max_attempts`` or the deadline, whichever bites first, then
        the query degrades to the data-graph oracle path under the
        writer mutex — slower, but always exact, so a conflicted query
        returns a late correct answer rather than a fast wrong one.

        Deadline classification happens here, in exactly one place and
        with one comparator: a result is ``timed_out`` iff it *finished*
        at or past its deadline (``>=``, matching the retry loop's own
        cutoff), whatever path produced it.  ``degraded`` stays
        orthogonal — it marks oracle-path answers — so a query that
        degrades *and* finishes late counts once in ``degraded`` and
        once in ``timeouts``, never twice in either.
        """
        expr = as_expression(expr)
        timeout = self.default_timeout if timeout is _UNSET else timeout
        started = self._now()
        deadline = started + timeout if timeout is not None else None
        tracer = _trace.TRACER
        span = tracer.span("serving.query", query=str(expr),
                           index=self._family) if tracer.enabled \
            else _trace.NULL_SPAN
        with span:
            result = self._query_inner(expr, deadline)
            finished = self._now()
            result.duration_s = finished - started
            result.timed_out = deadline is not None and finished >= deadline
            span.tag(outcome="degraded" if result.degraded else "ok",
                     epoch=result.epoch, attempts=result.attempts,
                     cache="hit" if result.cache_hit else "miss")
        self.stats.record_result(result)
        (self._m_degraded if result.degraded else self._m_ok).inc()
        if result.conflicts:
            self._m_conflicts.inc(result.conflicts)
        if result.timed_out:
            self._m_timeouts.inc()
        if result.cache_hit:
            self._m_cache_hits.inc()
        self._m_attempts.observe(result.attempts)
        self._observe_fup(expr, result)
        return result

    def _query_inner(self, expr: PathExpression,
                     deadline: float | None) -> ServedResult:
        conflicts = 0
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            clean, seq = self.clock.read()
            if clean:
                outcome = self._attempt(expr, seq)
                if outcome is not None and self.clock.validate(seq):
                    answers, validated, cache_hit, cost, token = outcome
                    if token is not None and not cache_hit:
                        self._cache_store(expr, token, answers, validated,
                                          seq // 2)
                    return ServedResult(
                        expr=expr, answers=set(answers), validated=validated,
                        epoch=seq // 2, cost=cost, attempts=attempts,
                        conflicts=conflicts, cache_hit=cache_hit)
            conflicts += 1
            if deadline is not None and self._now() >= deadline:
                break
            # Yield first, back off harder if the writer is long-running.
            time.sleep(0 if conflicts < 2 else min(0.0002 * conflicts, 0.002))
        return self._degraded_query(expr, attempts, conflicts)

    def _attempt(self, expr: PathExpression, seq: int) -> (
            "tuple[set[int] | frozenset[int], bool, bool, CostCounter, tuple | None] | None"):
        """One optimistic evaluation; ``None`` signals a torn read."""
        try:
            token = None
            if self.cache_enabled:
                token = self._fingerprint(expr)
                with self._cache_lock:
                    entry = self._cache.get(expr)
                if entry is not None and entry.token == token:
                    return (entry.answers, entry.validated, True,
                            CostCounter(index_visits=1), token)
            cost = CostCounter()
            result = self.index.query(expr, cost)
            # Copy out before validation: the caller owns the answer set,
            # and the index may recycle target extents on a later write.
            return (set(result.answers), result.validated, False,
                    cost, token)
        except Exception:
            # A concurrent writer left the structures mid-flight (dict
            # resized during iteration, a node id vanished, ...).  The
            # sequence check would reject this attempt anyway; bail out
            # early and let the retry loop decide.
            return None

    def _degraded_query(self, expr: PathExpression, attempts: int,
                        conflicts: int) -> ServedResult:
        # ``timed_out`` is classified by the caller once the result is
        # final — the degraded path only marks *how* it was answered.
        tracer = _trace.TRACER
        span = tracer.span("serving.degraded", query=str(expr)) \
            if tracer.enabled else _trace.NULL_SPAN
        with span:
            with self.clock.pause_writers() as epoch:
                cost = CostCounter()
                answers = evaluate_on_data_graph(self.graph, expr, cost)
            span.tag(epoch=epoch)
        return ServedResult(expr=expr, answers=answers, validated=True,
                            epoch=epoch, cost=cost, attempts=attempts,
                            conflicts=conflicts, degraded=True)

    def _cache_store(self, expr: PathExpression, token: tuple,
                     answers: set[int], validated: bool, epoch: int) -> None:
        entry = _CacheEntry(token, frozenset(answers), validated, epoch)
        with self._cache_lock:
            if expr not in self._cache and \
                    len(self._cache) >= self._cache_size:
                self._cache.pop(next(iter(self._cache)))  # FIFO eviction
            self._cache[expr] = entry

    def _observe_fup(self, expr: PathExpression, result: ServedResult) -> None:
        """Queue refinement work for frequent, still-validating queries."""
        with self._fup_lock:
            frequent = self.extractor.observe(expr)
            if frequent and result.validated and expr not in self._pending_set:
                self._pending_set.add(expr)
                self._pending.append(expr)

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------
    def serve(self, queries: "Iterable[PathExpression | str]",
              workers: int = 4, timeout: float | None = _UNSET,
              client_io: "Callable[[ServedResult], None] | None" = None,
              ) -> list[ServedResult]:
        """Answer a batch on ``workers`` threads; results in input order.

        ``client_io``, when given, is called with each result *on the
        worker thread* — the hook where a deployment writes the response
        back to its client (and where the serving bench models that
        I/O).  Worker exceptions outside :meth:`query`'s own handling
        are re-raised after the batch drains.
        """
        exprs = [as_expression(q) for q in queries]
        if not exprs:
            return []
        if workers < 1:
            raise ValueError("workers must be >= 1")
        results: list[ServedResult | None] = [None] * len(exprs)
        work: _queue.SimpleQueue = _queue.SimpleQueue()
        for item in enumerate(exprs):
            work.put(item)
        depth = self._m_queue_depth
        depth.inc(len(exprs))
        errors: list[BaseException] = []

        def run() -> None:
            while True:
                try:
                    position, expr = work.get_nowait()
                except _queue.Empty:
                    return
                try:
                    result = self.query(expr, timeout=timeout)
                    results[position] = result
                    if client_io is not None:
                        client_io(result)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
                finally:
                    depth.dec()

        threads = [threading.Thread(target=run, name=f"serving-worker-{i}",
                                    daemon=True)
                   for i in range(min(workers, len(exprs)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        # Every queue item was processed or errored; errors raised above.
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Writer path
    # ------------------------------------------------------------------
    def insert_subtree(self, parent_oid: int,
                       subtree: SubtreeSpec) -> list[int]:
        """Insert ``(label, [children])`` under ``parent_oid`` atomically.

        The document mutation, index registration, and epoch bump all
        land inside one write window: a reader either sees none of the
        update or all of it.
        """
        tracer = _trace.TRACER
        span = tracer.span("serving.update", kind="insert_subtree") \
            if tracer.enabled else _trace.NULL_SPAN
        with span:
            with self.clock.write() as epoch:
                oids = _maintenance.insert_subtree(
                    self.graph, parent_oid, subtree, indexes=[self.index])
            span.tag(epoch=epoch, new_nodes=len(oids))
        self._committed_update("insert_subtree")
        return oids

    def add_reference(self, source_oid: int, target_oid: int) -> None:
        """Add an IDREF edge atomically (demotions included)."""
        tracer = _trace.TRACER
        span = tracer.span("serving.update", kind="add_reference") \
            if tracer.enabled else _trace.NULL_SPAN
        with span:
            with self.clock.write() as epoch:
                _maintenance.add_reference(
                    self.graph, source_oid, target_oid,
                    indexes=[self.index])
            span.tag(epoch=epoch)
        self._committed_update("add_reference")

    def _committed_update(self, kind: str) -> None:
        self.stats.record_update()
        self._m_updates.labels(index=self._family, kind=kind).inc()
        self._m_epoch.set(self.clock.epoch)

    def refine_pending(self, limit: int | None = None) -> int:
        """Adapt the index for queued FUPs; returns refinements applied.

        Each expression is replayed through the wrapped engine's full
        adaptive loop inside its *own* write window, so long refinement
        backlogs never starve readers for the whole batch — conflicts
        stay per-refinement.
        """
        applied = 0
        tracer = _trace.TRACER
        while limit is None or applied < limit:
            with self._fup_lock:
                if not self._pending:
                    break
                expr = self._pending.popleft()
                self._pending_set.discard(expr)
            span = tracer.span("serving.refine", query=str(expr)) \
                if tracer.enabled else _trace.NULL_SPAN
            with span:
                with self.clock.write() as epoch:
                    self.engine.execute(expr)
                span.tag(epoch=epoch)
            applied += 1
            self.stats.record_refinement()
            self._m_updates.labels(index=self._family, kind="refine").inc()
            self._m_epoch.set(self.clock.epoch)
        return applied

    # ------------------------------------------------------------------
    # Pinned snapshots
    # ------------------------------------------------------------------
    def pin(self) -> "_Pin":
        """Context manager yielding a :class:`PinnedSnapshot`.

        Writers queue until the pin is released; a query issued through
        the snapshot — even one that *finishes* while an update is
        already waiting to commit — observes the pinned epoch's state.
        Keep pins short: they add writer latency, never wrong answers.
        """
        return _Pin(self)

    def __repr__(self) -> str:
        return (f"ServingEngine(index={self._family}, "
                f"epoch={self.clock.epoch}, "
                f"queries={self.stats.snapshot()['queries']})")


class _Pin:
    """Context manager backing :meth:`ServingEngine.pin`."""

    def __init__(self, serving: ServingEngine) -> None:
        self._serving = serving
        self._cm = None
        self._page_holds: list = []

    def __enter__(self) -> PinnedSnapshot:
        # Hold every attached buffer pool's eviction epoch first: by the
        # time writers are paused, no page the snapshot reads can be
        # evicted out from under it.
        page_epochs = []
        try:
            for pool in self._serving._page_pools:
                hold = pool.hold_epoch()
                page_epochs.append(hold.__enter__())
                self._page_holds.append(hold)
            self._cm = self._serving.clock.pause_writers()
            epoch = self._cm.__enter__()
        except BaseException:
            self._release_page_holds()
            raise
        return PinnedSnapshot(self._serving, epoch, tuple(page_epochs))

    def _release_page_holds(self) -> None:
        holds, self._page_holds = self._page_holds, []
        for hold in reversed(holds):
            hold.__exit__(None, None, None)

    def __exit__(self, *exc: object) -> bool:
        cm, self._cm = self._cm, None
        try:
            return bool(cm.__exit__(*exc))
        finally:
            self._release_page_holds()
