"""Snapshot-isolated concurrent serving (see ``docs/serving.md``).

Public surface::

    from repro.serving import ServingEngine, ReplayConfig, run_replay

    serving = ServingEngine(graph)                 # M*(k) underneath
    results = serving.serve(queries, workers=4)    # snapshot-isolated
    serving.insert_subtree(0, ("item", []))        # epoch-bumping writer
"""

from repro.serving.engine import (
    PinnedSnapshot,
    ServedResult,
    ServingEngine,
    ServingStats,
)
from repro.serving.replay import (
    ReplayConfig,
    ReplayReport,
    answers_digest,
    load_workload,
    random_update,
    run_replay,
    save_workload,
)
from repro.serving.snapshot import EpochClock

__all__ = [
    "EpochClock",
    "PinnedSnapshot",
    "ReplayConfig",
    "ReplayReport",
    "ServedResult",
    "ServingEngine",
    "ServingStats",
    "answers_digest",
    "load_workload",
    "random_update",
    "run_replay",
    "save_workload",
]
