"""Epoch-based snapshot coordination for concurrent serving.

The indexes in this package mutate **in place** (refinement splits
nodes, maintenance demotes claims), so true multi-version snapshots
would mean copying index graphs per update — far too expensive for the
write rates the maintenance module supports.  Instead the serving layer
uses a *seqlock*: a single writer mutex plus a monotone sequence
counter that is **odd while a writer is mid-mutation** and even once
the mutation has committed.

Readers never block writers and never take the mutex on the fast path:

1. read the sequence; if odd, a writer is mid-commit — back off;
2. evaluate the query against the live index;
3. re-read the sequence; if it moved, a writer committed underneath the
   evaluation and the answer may mix pre- and post-update state — throw
   it away and retry (any exception raised by step 2 is treated the
   same way: torn index state may be structurally inconsistent).

An answer that survives step 3 was computed entirely within one even
sequence window, i.e. against exactly the state committed by some
prefix of the writes — that is the snapshot-isolation guarantee.  The
**epoch** of that answer is ``seq // 2``, the number of committed
writes; it is what result tokens and the monotonicity property tests
pin.

This works *because of* CPython's GIL, not despite it: individual
bytecode operations are atomic, so a torn read can return stale or
mixed values (or raise mid-iteration) but never observe memory that
was never written.  The design would need real memory barriers on a
free-threaded build; the seqlock protocol itself carries over
unchanged.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager


class EpochClock:
    """Seqlock: exclusive writers, optimistic lock-free readers.

    ``seq`` is even when no writer is active and odd while one is
    mutating; ``epoch`` (= ``seq // 2``) counts committed writes and is
    the value readers report as their snapshot identity.
    """

    def __init__(self) -> None:
        self._mutex = threading.RLock()
        self._seq = 0
        self._writing = False  # guarded by _mutex; makes write() reentrant

    @property
    def seq(self) -> int:
        """Current sequence value (reading it is always safe)."""
        return self._seq

    @property
    def epoch(self) -> int:
        """Number of committed writes (a mid-write read still reports
        the last committed epoch)."""
        return self._seq // 2

    def read(self) -> tuple[bool, int]:
        """Begin an optimistic read: ``(clean, seq)``.

        ``clean`` is False when a writer is mid-commit (``seq`` odd);
        callers should back off rather than evaluate against state that
        is guaranteed to be torn.
        """
        seq = self._seq
        return (seq & 1) == 0, seq

    def validate(self, seq: int) -> bool:
        """Did the window opened by :meth:`read` stay closed to writers?"""
        return self._seq == seq

    @contextmanager
    def write(self) -> Iterator[int]:
        """Exclusive write window; yields the epoch being created.

        Reentrant from the owning thread (the inner window joins the
        outer one rather than double-bumping the sequence).  The
        sequence is advanced to even even when the body raises: the
        partial mutation is the writer's problem to surface, but readers
        must never spin forever on an odd sequence.
        """
        with self._mutex:
            outer = not self._writing
            if outer:
                self._writing = True
                self._seq += 1  # odd: mutation in progress
            try:
                yield (self._seq + 1) // 2
            finally:
                if outer:
                    self._seq += 1  # even: committed
                    self._writing = False

    @contextmanager
    def pause_writers(self) -> Iterator[int]:
        """Hold the writer mutex *without* advancing the sequence.

        This pins the current epoch: writers queue behind the mutex,
        optimistic readers continue unobstructed (and keep validating,
        since nothing moves the sequence).  Used for pinned-snapshot
        oracles and the degraded query path.
        """
        with self._mutex:
            yield self._seq // 2

    def __repr__(self) -> str:
        return f"EpochClock(seq={self._seq}, epoch={self.epoch})"
