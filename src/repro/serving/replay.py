"""Workload replay through the concurrent serving layer.

This is the driver behind ``repro serve --replay`` and the serving
bench group: it pushes a workload file through a
:class:`~repro.serving.engine.ServingEngine` on N worker threads,
interleaved with document-update rounds and FUP refinement, and reports
throughput plus isolation bookkeeping.

Two design points worth knowing before reading the code:

* **Updates run on the coordinating thread, between chunks** — not on
  the workers.  With a fixed ``update_seed`` the document therefore
  evolves through exactly the same sequence of mutations regardless of
  worker count or scheduling, which is what makes the replay *digest*
  (a hash of the final per-query answer sets) a determinism check: two
  runs of the same replay must produce byte-identical digests, and the
  CI flake guard diffs them.
* **``client_stall_s`` models per-query client I/O** (request parsing,
  response serialisation, socket writes) as a short sleep in the
  worker's response hook.  CPython's GIL serialises the index
  evaluation itself, so worker threads buy overlap of exactly this I/O
  — which is the honest throughput story for any threaded Python
  server.  The serving bench sets a realistic stall and measures how
  replay throughput scales with workers; with ``client_stall_s=0`` the
  scaling collapses to ~1x, as it must.  See ``docs/serving.md``.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field

from repro.queries.pathexpr import PathExpression, as_expression
from repro.serving.engine import ServedResult, ServingEngine


def load_workload(path: str) -> list[PathExpression]:
    """Read a workload file: one XPath-style query per line.

    Blank lines and ``#`` comments are skipped, so workload files can
    carry their provenance inline.
    """
    queries: list[PathExpression] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            queries.append(as_expression(text))
    if not queries:
        raise ValueError(f"workload file {path!r} contains no queries")
    return queries


def save_workload(path: str, queries: "Iterable[PathExpression | str]",
                  header: str | None = None) -> None:
    """Write queries (one per line) in the format :func:`load_workload`
    reads back."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for query in queries:
            handle.write(f"{as_expression(query)}\n")


def random_update(serving: ServingEngine, rng: random.Random) -> str:
    """One random document update through the serving writer path.

    Mirrors the differential oracle's update generator
    (:func:`repro.verify.oracle._apply_random_update`): roughly half
    IDREF additions, half two-node subtree insertions, falling back to
    insertion when no fresh reference edge is found.  Returns a
    human-readable description for logs and reports.
    """
    graph = serving.graph
    labels = sorted(graph.alphabet())
    if rng.random() >= 0.5:
        for _ in range(8):
            source = rng.randrange(graph.num_nodes)
            target = rng.randrange(1, graph.num_nodes)
            if target != source and not graph.has_edge(source, target):
                serving.add_reference(source, target)
                return f"add_reference({source} -> {target})"
    parent = rng.randrange(graph.num_nodes)
    label = labels[rng.randrange(len(labels))]
    child = labels[rng.randrange(len(labels))]
    serving.insert_subtree(parent, (label, [(child, [])]))
    return f"insert_subtree(({label} -> {child}) under {parent})"


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs for one replay run (all deterministic given the seeds)."""

    workers: int = 4
    #: How many times the workload is replayed back to back — pass 2+
    #: is where result caches and refined indexes earn their keep.
    passes: int = 2
    #: Per-query deadline in seconds (None = no deadline).
    timeout: float | None = None
    #: Document-update rounds interleaved between equal query chunks.
    update_rounds: int = 0
    updates_per_round: int = 1
    update_seed: int = 0
    #: Refine queued FUPs after each update round (the adaptive loop).
    refine_between_rounds: bool = True
    #: Simulated per-query client I/O, slept in the worker's response
    #: hook (GIL released — this is what workers overlap).
    client_stall_s: float = 0.0
    #: Re-check final answers against the data-graph oracle at the end.
    check: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        if self.update_rounds < 0 or self.updates_per_round < 0:
            raise ValueError("update rounds/counts must be >= 0")
        if self.client_stall_s < 0:
            raise ValueError("client_stall_s must be >= 0")


@dataclass
class ReplayReport:
    """What one replay run did, and how fast."""

    queries_served: int = 0
    duration_s: float = 0.0
    workers: int = 1
    passes: int = 1
    start_epoch: int = 0
    end_epoch: int = 0
    updates_applied: int = 0
    update_log: list[str] = field(default_factory=list)
    refinements: int = 0
    conflicts: int = 0
    degraded: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    check_failures: int = 0
    checked: bool = False
    digest: str = ""

    @property
    def throughput_qps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.queries_served / self.duration_s

    def as_dict(self) -> dict:
        return {
            "queries_served": self.queries_served,
            "duration_s": self.duration_s,
            "throughput_qps": self.throughput_qps,
            "workers": self.workers,
            "passes": self.passes,
            "start_epoch": self.start_epoch,
            "end_epoch": self.end_epoch,
            "updates_applied": self.updates_applied,
            "update_log": list(self.update_log),
            "refinements": self.refinements,
            "conflicts": self.conflicts,
            "degraded": self.degraded,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "checked": self.checked,
            "check_failures": self.check_failures,
            "digest": self.digest,
        }


def _chunks(items: list, pieces: int) -> list[list]:
    """Split into ``pieces`` near-equal consecutive chunks (no empties
    unless there are more pieces than items)."""
    if pieces <= 1:
        return [items]
    size, extra = divmod(len(items), pieces)
    out, start = [], 0
    for i in range(pieces):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def answers_digest(serving: ServingEngine,
                   queries: "Iterable[PathExpression | str]") -> str:
    """SHA-256 over final ground-truth answers of the unique queries.

    Computed under a pinned snapshot so the digest names one exact
    epoch.  Because replay applies updates on the coordinating thread
    in seed order, this digest is invariant across worker counts and
    scheduling — the CI flake guard runs the same replay twice and
    fails on any digest difference.
    """
    unique = sorted({as_expression(q) for q in queries}, key=str)
    hasher = hashlib.sha256()
    with serving.pin() as snap:
        hasher.update(f"epoch={snap.epoch}\n".encode())
        for expr in unique:
            answers = ",".join(map(str, sorted(snap.oracle(expr))))
            hasher.update(f"{expr}=[{answers}]\n".encode())
    return hasher.hexdigest()


def run_replay(serving: ServingEngine,
               queries: "Iterable[PathExpression | str]",
               config: ReplayConfig = ReplayConfig()) -> ReplayReport:
    """Replay a workload through the serving engine per ``config``.

    The full stream (``passes`` copies of the workload) is split into
    ``update_rounds + 1`` consecutive chunks; each boundary applies
    ``updates_per_round`` random document updates and (optionally)
    drains the FUP refinement queue.  Workers serve each chunk
    concurrently; every answer is snapshot-isolated per the engine's
    protocol, so the report's conflict/degraded counts are bookkeeping,
    not correctness caveats.
    """
    exprs = [as_expression(q) for q in queries]
    stream = exprs * config.passes
    rng = random.Random(config.update_seed)
    report = ReplayReport(workers=config.workers, passes=config.passes,
                          start_epoch=serving.epoch)
    before = serving.stats.snapshot()

    stall = config.client_stall_s

    def client_io(_result: ServedResult) -> None:
        if stall:
            time.sleep(stall)

    started = time.perf_counter()
    chunks = _chunks(stream, config.update_rounds + 1)
    for round_index, chunk in enumerate(chunks):
        if chunk:
            results = serving.serve(chunk, workers=config.workers,
                                    timeout=config.timeout,
                                    client_io=client_io)
            report.queries_served += len(results)
        if round_index < config.update_rounds and serving.supports_updates:
            for _ in range(config.updates_per_round):
                report.update_log.append(random_update(serving, rng))
                report.updates_applied += 1
            if config.refine_between_rounds:
                report.refinements += serving.refine_pending()
    report.duration_s = time.perf_counter() - started

    after = serving.stats.snapshot()
    report.conflicts = after["conflicts"] - before["conflicts"]
    report.degraded = after["degraded"] - before["degraded"]
    report.timeouts = after["timeouts"] - before["timeouts"]
    report.cache_hits = after["cache_hits"] - before["cache_hits"]
    report.end_epoch = serving.epoch

    if config.check:
        report.checked = True
        with serving.pin() as snap:
            for expr in sorted(set(exprs), key=str):
                served = serving.query(expr, timeout=config.timeout)
                if served.answers != snap.oracle(expr):
                    report.check_failures += 1
    report.digest = answers_digest(serving, exprs)
    return report
