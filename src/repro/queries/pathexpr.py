"""Simple path expressions (the paper's query language).

The paper focuses on *simple path expressions*, which are label paths with
either an absolute (``/a/b/c``) or a self-or-descendant (``//a/b/c``)
anchor, optionally containing single-step wildcards (``*``), e.g. the
paper's ``/site/regions/*/item``.

``length`` follows the paper's convention of counting *edges*:
``length(//a/b/c) == 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

WILDCARD = "*"


@dataclass(frozen=True)
class PathExpression:
    """An immutable simple path expression.

    Attributes:
        labels: the label sequence ``(l0, l1, ..., ln)``; ``"*"`` matches
            any label.
        rooted: ``True`` for an absolute path (``/l0/...``, instances must
            begin at a child of the document root), ``False`` for a
            descendant path (``//l0/...``, instances may begin anywhere).
        descendant_steps: positions ``i >= 1`` reached through the
            descendant axis (``a//b`` instead of ``a/b``): the instance
            may take any number of edges between labels ``i-1`` and
            ``i``.  Empty for the paper's simple path expressions.
    """

    labels: tuple[str, ...]
    rooted: bool = False
    descendant_steps: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValueError("a path expression needs at least one label")
        for label in self.labels:
            if not label or "/" in label:
                raise ValueError(f"invalid label {label!r}")
        for position in self.descendant_steps:
            if not 1 <= position < len(self.labels):
                raise ValueError(
                    f"descendant step {position} out of range")
        # Expressions key every hot dict (engine cache, FUP counters,
        # refined sets); the generated dataclass __hash__ re-hashes all
        # three fields per probe, so pin the value once.
        object.__setattr__(self, "_hash", hash(
            (self.labels, self.rooted, self.descendant_steps)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def parse(cls, text: str) -> "PathExpression":
        """Parse XPath-style syntax: ``/a/b``, ``//a/b``, ``//a/*/c``,
        and internal descendant axes like ``//a//b/c``."""
        if text.startswith("//"):
            rooted = False
            body = text[2:]
        elif text.startswith("/"):
            rooted = True
            body = text[1:]
        else:
            # Bare label paths are treated as descendant expressions, the
            # form every workload query takes.
            rooted = False
            body = text
        if not body:
            raise ValueError(f"empty path expression {text!r}")
        labels: list[str] = []
        descendant_steps: set[int] = set()
        pending_descendant = False
        for piece in body.split("/"):
            if piece == "":
                # An empty piece marks a '//' between labels.
                if pending_descendant or not labels:
                    raise ValueError(
                        f"empty step in path expression {text!r}")
                pending_descendant = True
                continue
            if pending_descendant:
                descendant_steps.add(len(labels))
                pending_descendant = False
            labels.append(piece)
        if pending_descendant:
            raise ValueError(f"trailing '//' in path expression {text!r}")
        return cls(labels=tuple(labels), rooted=rooted,
                   descendant_steps=frozenset(descendant_steps))

    @classmethod
    def descendant(cls, *labels: str) -> "PathExpression":
        """Build ``//l0/l1/...`` from label arguments."""
        return cls(labels=tuple(labels), rooted=False)

    @classmethod
    def absolute(cls, *labels: str) -> "PathExpression":
        """Build ``/l0/l1/...`` from label arguments."""
        return cls(labels=tuple(labels), rooted=True)

    @property
    def length(self) -> int:
        """Path length in edges (one less than the number of labels).

        Descendant steps make the *instance* length unbounded; ``length``
        still reports the minimum (one edge per step), which is what the
        workload statistics and component choices use.
        """
        return len(self.labels) - 1

    @property
    def has_wildcard(self) -> bool:
        return WILDCARD in self.labels

    @property
    def has_descendant_steps(self) -> bool:
        """Does the expression use the descendant axis between labels?"""
        return bool(self.descendant_steps)

    @property
    def last_label(self) -> str:
        return self.labels[-1]

    def prefix(self, num_labels: int) -> "PathExpression":
        """The expression over the first ``num_labels`` labels."""
        if not 1 <= num_labels <= len(self.labels):
            raise ValueError(f"prefix of {num_labels} labels out of range")
        kept = frozenset(position for position in self.descendant_steps
                         if position < num_labels)
        return PathExpression(self.labels[:num_labels], rooted=self.rooted,
                              descendant_steps=kept)

    def subpath(self, start: int, num_labels: int) -> "PathExpression":
        """A descendant expression over ``labels[start:start+num_labels]``."""
        if num_labels < 1 or start < 0 or start + num_labels > len(self.labels):
            raise ValueError(
                f"subpath({start}, {num_labels}) out of range for {self}")
        kept = frozenset(position - start
                         for position in self.descendant_steps
                         if start < position < start + num_labels)
        return PathExpression(self.labels[start:start + num_labels],
                              rooted=False, descendant_steps=kept)

    def matches_label(self, position: int, label: str) -> bool:
        """Does the step at ``position`` accept ``label``?"""
        step = self.labels[position]
        return step == WILDCARD or step == label

    def __str__(self) -> str:
        anchor = "/" if self.rooted else "//"
        pieces = [self.labels[0]]
        for position in range(1, len(self.labels)):
            pieces.append("//" if position in self.descendant_steps else "/")
            pieces.append(self.labels[position])
        return anchor + "".join(pieces)


def as_expression(query: "PathExpression | str | Sequence[str]") -> PathExpression:
    """Coerce user input (expression, XPath string, label sequence)."""
    if isinstance(query, PathExpression):
        return query
    if isinstance(query, str):
        return PathExpression.parse(query)
    return PathExpression(labels=tuple(query), rooted=False)
