"""Synthetic query workloads (Section 5, "Query workload").

The paper generates workloads as follows: enumerate all label paths of
length up to a maximum (9 or 4) in the data graph, then for each query
pick a label path at random, extract a subsequence with random start
position and length, and prefix it with the self-or-descendant axis
(``//``).  Because the start position is chosen uniformly, short queries
come out more likely than long ones — matching the observation that short
path expressions dominate real workloads (Figures 8 and 9 chart the
resulting length distributions).
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.graph.datagraph import DataGraph
from repro.graph.paths import enumerate_rooted_label_paths
from repro.queries.pathexpr import PathExpression


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    num_queries: int = 500
    max_length: int = 9
    seed: int = 0
    #: Safety cap on the enumerated label-path pool (None = no cap).
    max_paths: int | None = None

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ValueError("num_queries must be >= 0")
        if self.max_length < 0:
            raise ValueError("max_length must be >= 0")


@dataclass(frozen=True)
class Workload:
    """A generated sequence of FUP queries plus its provenance."""

    queries: tuple[PathExpression, ...]
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)

    @classmethod
    def generate(cls, graph: DataGraph, num_queries: int = 500,
                 max_length: int = 9, seed: int = 0,
                 max_paths: int | None = None) -> "Workload":
        """Generate a workload over ``graph`` per the paper's recipe."""
        spec = WorkloadSpec(num_queries=num_queries, max_length=max_length,
                            seed=seed, max_paths=max_paths)
        return cls.from_spec(graph, spec)

    @classmethod
    def from_spec(cls, graph: DataGraph, spec: WorkloadSpec) -> "Workload":
        pool = enumerate_rooted_label_paths(graph, spec.max_length,
                                            max_paths=spec.max_paths)
        if not pool:
            raise ValueError("data graph yields no label paths")
        rng = random.Random(spec.seed)
        queries = []
        for _ in range(spec.num_queries):
            path = pool[rng.randrange(len(pool))]
            start = rng.randrange(len(path))
            num_labels = rng.randint(1, len(path) - start)
            queries.append(PathExpression(path[start:start + num_labels],
                                          rooted=False))
        return cls(queries=tuple(queries), spec=spec)

    def __iter__(self) -> Iterator[PathExpression]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def lengths(self) -> list[int]:
        """Query lengths in edges, in workload order."""
        return [query.length for query in self.queries]

    def length_histogram(self) -> list[float]:
        """Fraction of queries per length ``0..max_length`` (Figs 8-9)."""
        return query_length_histogram(self.queries, self.spec.max_length)

    def batches(self, batch_size: int) -> Iterator[tuple[PathExpression, ...]]:
        """Consecutive query batches (the growth experiments use 50)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for start in range(0, len(self.queries), batch_size):
            yield self.queries[start:start + batch_size]


def generate_twig_queries(graph: DataGraph, num_queries: int,
                          max_trunk_length: int = 4,
                          max_predicate_depth: int = 2,
                          predicate_probability: float = 0.5,
                          predicate_positions: str = "any",
                          seed: int = 0):
    """Generate branching (twig) queries over ``graph``.

    Each query's trunk comes from the same subsequence-of-a-label-path
    recipe as :class:`Workload`; trunk steps then receive, with
    ``predicate_probability``, an existential predicate sampled from an
    actual downward walk of one of the step's instances — so predicates
    are structurally plausible (usually satisfiable) rather than noise.

    ``predicate_positions`` is ``"any"`` (every step may carry one) or
    ``"final"`` (selection-style twigs like ``//a/b[c/d]``, the class the
    UD(k,l)-index answers without validation).
    """
    if predicate_positions not in ("any", "final"):
        raise ValueError("predicate_positions must be 'any' or 'final'")
    from repro.queries.branching import BranchingPathExpression, Step
    from repro.queries.evaluator import evaluate_on_data_graph

    base = Workload.generate(graph, num_queries=num_queries,
                             max_length=max_trunk_length, seed=seed)
    rng = random.Random(seed + 1)
    node_labels = graph.labels
    children = graph.child_rows()
    queries = []
    for trunk in base:
        steps = []
        for position in range(len(trunk.labels)):
            prefix = PathExpression(trunk.labels[:position + 1])
            predicates = ()
            eligible = (predicate_positions == "any"
                        or position == len(trunk.labels) - 1)
            if eligible and rng.random() < predicate_probability:
                instances = sorted(evaluate_on_data_graph(graph, prefix))
                if instances:
                    node = instances[rng.randrange(len(instances))]
                    walk: list[str] = []
                    depth = rng.randint(1, max_predicate_depth)
                    for _ in range(depth):
                        if not children[node]:
                            break
                        node = children[node][rng.randrange(len(children[node]))]
                        walk.append(node_labels[node])
                    if walk:
                        predicates = (PathExpression(tuple(walk)),)
            steps.append(Step(trunk.labels[position], predicates))
        queries.append(BranchingPathExpression(tuple(steps), rooted=False))
    return queries


def query_length_histogram(queries: Sequence[PathExpression],
                           max_length: int) -> list[float]:
    """Normalised histogram of query lengths over ``0..max_length``."""
    counts = [0] * (max_length + 1)
    for query in queries:
        if query.length > max_length:
            raise ValueError(f"query {query} longer than max_length")
        counts[query.length] += 1
    total = len(queries)
    if total == 0:
        return [0.0] * (max_length + 1)
    return [count / total for count in counts]
