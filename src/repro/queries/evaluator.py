"""Direct evaluation and validation of path expressions on the data graph.

Two operations live here:

* :func:`evaluate_on_data_graph` — the index-less baseline: compute the
  target set of a path expression by forward navigation.  This provides
  ground truth for tests and the "relevant data" target sets consumed by
  the refinement algorithms.
* :func:`validate_candidate` / :func:`validate_extent` — the validation
  step of the paper's query algorithm: check whether candidate data nodes
  returned by an imprecise index really have the queried incoming label
  path, charging one *data-node visit* per node examined (Section 5's
  second cost component).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cost.counters import CostCounter
from repro.graph.datagraph import DataGraph
from repro.obs import trace as _trace
from repro.queries.pathexpr import WILDCARD, PathExpression


def _descendant_closure(adjacency, frontier: set[int],
                        counter: CostCounter | None,
                        counter_field: str) -> set[int]:
    """All nodes reachable from ``frontier`` via >= 1 edges (DFS).

    Charges one visit per *newly examined node*: a node entering
    ``reached`` is charged exactly once, no matter how many edges lead to
    it.  The paper's second cost component counts data-node visits, so on
    DAG/IDREF-cyclic graphs (where several edges converge on one node)
    charging per edge traversal would overcount.
    """
    reached: set[int] = set()
    queue = list(frontier)
    while queue:
        node = queue.pop()
        for neighbor in adjacency[node]:
            if neighbor not in reached:
                if counter is not None:
                    setattr(counter, counter_field,
                            getattr(counter, counter_field) + 1)
                reached.add(neighbor)
                queue.append(neighbor)
    return reached


def evaluate_on_data_graph(graph: DataGraph, expr: PathExpression,
                           counter: CostCounter | None = None) -> set[int]:
    """Target set of ``expr`` by forward navigation over the data graph.

    Supports internal descendant axes (``//a//b``): a descendant step
    expands the frontier to all strict descendants before matching the
    step's label.  When ``counter`` is given, every data node examined is
    charged as one data-node visit (used by the "no index" baseline in
    the benches).
    """
    tracer = _trace.TRACER
    if not tracer.enabled:
        return _navigate(graph, expr, counter)
    with tracer.span("evaluator.navigate", query=str(expr)) as span:
        frontier = _navigate(graph, expr, counter)
        span.tag(answers=len(frontier))
        return frontier


def _navigate(graph: DataGraph, expr: PathExpression,
              counter: CostCounter | None = None) -> set[int]:
    node_labels = graph.labels
    children = graph.child_rows()
    first = expr.labels[0]
    if expr.rooted:
        frontier = {child for child in children[graph.root]
                    if first == WILDCARD or node_labels[child] == first}
        if counter is not None:
            counter.data_visits += len(children[graph.root])
    else:
        if first == WILDCARD:
            frontier = set(graph.nodes())
        else:
            frontier = set(graph.nodes_with_label(first))
        if counter is not None:
            counter.data_visits += len(frontier)
    for position in range(1, len(expr.labels)):
        label = expr.labels[position]
        if position in expr.descendant_steps:
            candidates = _descendant_closure(children, frontier, counter,
                                             "data_visits")
            frontier = {oid for oid in candidates
                        if label == WILDCARD or node_labels[oid] == label}
        else:
            # One data visit per child examined, charged in bulk per row
            # (identical totals, fewer attribute stores).
            next_frontier: set[int] = set()
            examined = 0
            if label == WILDCARD:
                for oid in frontier:
                    row = children[oid]
                    examined += len(row)
                    next_frontier.update(row)
            else:
                for oid in frontier:
                    row = children[oid]
                    examined += len(row)
                    for child in row:
                        if node_labels[child] == label:
                            next_frontier.add(child)
            if counter is not None:
                counter.data_visits += examined
            frontier = next_frontier
        if not frontier:
            break
    return frontier


def required_similarity(graph: DataGraph, expr: PathExpression) -> float:
    """Similarity an index node needs before its extent can be returned
    without validation (Section 3.1's precision test).

    ``length`` edges for an unrooted child-axis expression.  A rooted
    expression is certified as if it were ``//<root label>/...`` — one
    edge more — but that rewrite is only equivalent when the root's
    label occurs nowhere else in the document.  When another node shares
    the label, a k-bisimilar extent can mix true root children with
    impostors sitting below the look-alike node (they share incoming
    *label* paths, which is all bisimilarity sees), so no finite
    similarity certifies rootedness and validation is forced.
    Descendant axes have unbounded instance length and are never
    certified either.
    """
    # getattr: branching expressions share rooted/length but have no
    # descendant axis at the trunk level.
    if getattr(expr, "has_descendant_steps", False):
        return float("inf")
    if not expr.rooted:
        return expr.length
    root_label = graph.labels[graph.root]
    if len(graph.nodes_with_label(root_label)) > 1:
        return float("inf")
    return expr.length + 1


def validate_candidate(graph: DataGraph, expr: PathExpression, oid: int,
                       counter: CostCounter | None = None) -> bool:
    """Does ``oid`` really have ``expr`` as an incoming path?

    Matches the label path backwards from the candidate, charging one
    data-node visit for every parent examined.  For a rooted expression
    the instance must additionally start at a child of the document root.
    """
    node_labels = graph.labels
    if not expr.matches_label(len(expr.labels) - 1, node_labels[oid]):
        return False
    parents = graph.parent_rows()
    frontier = {oid}
    for position in range(len(expr.labels) - 2, -1, -1):
        if (position + 1) in expr.descendant_steps:
            ancestors = _descendant_closure(parents, frontier, counter,
                                            "data_visits")
            next_frontier = {node for node in ancestors
                             if expr.matches_label(position,
                                                   node_labels[node])}
        else:
            # Inlined matches_label: one method call per parent examined
            # dominated validation profiles on the static families.
            want = expr.labels[position]
            wildcard = want == WILDCARD
            next_frontier = set()
            examined = 0
            for node in frontier:
                row = parents[node]
                examined += len(row)
                if wildcard:
                    next_frontier.update(row)
                    continue
                for parent in row:
                    if node_labels[parent] == want:
                        next_frontier.add(parent)
            if counter is not None:
                counter.data_visits += examined
        frontier = next_frontier
        if not frontier:
            return False
    if expr.rooted:
        # Charge one visit per parent actually examined and stop at the
        # first root edge — previously each surviving node was billed its
        # whole parent list up front and set-iteration order made the
        # early exit (and therefore the charge) nondeterministic.
        root = graph.root
        for node in sorted(frontier):
            for parent in parents[node]:
                if counter is not None:
                    counter.data_visits += 1
                if parent == root:
                    return True
        return False
    return True


def validate_extent(graph: DataGraph, expr: PathExpression,
                    extent: Iterable[int],
                    counter: CostCounter | None = None) -> set[int]:
    """Filter an index node's extent down to the true answers to ``expr``."""
    tracer = _trace.TRACER
    if not tracer.enabled:
        return {oid for oid in extent
                if validate_candidate(graph, expr, oid, counter)}
    with tracer.span("evaluator.validate", query=str(expr)) as span:
        candidates = list(extent)
        answers = {oid for oid in candidates
                   if validate_candidate(graph, expr, oid, counter)}
        span.tag(candidates=len(candidates), answers=len(answers))
        return answers


def find_instance(graph: DataGraph, expr: PathExpression, oid: int,
                  counter: CostCounter | None = None) -> list[int] | None:
    """One witness node path for answer ``oid``, or ``None``.

    Returns ``[v0, ..., vn]`` with ``vn == oid`` such that the node path
    instantiates ``expr`` (starting at a child of the root for rooted
    expressions).  Useful for explaining query results to users and in
    tests; mirrors :func:`validate_candidate` but keeps back-pointers,
    and like it charges one data-node visit per parent examined when a
    ``counter`` is given (Section 5's second cost component).
    Descendant-axis expressions are not supported (their witnesses have
    variable length).

    The witness is canonical: among eligible start nodes the smallest oid
    wins (rooted and unrooted alike), and each back-pointer records the
    smallest matching node of the level below — so two runs (or two
    Python implementations with different set/dict iteration orders)
    always reconstruct the same path.
    """
    if expr.has_descendant_steps:
        raise ValueError("find_instance supports child-axis expressions only")
    node_labels = graph.labels
    if not expr.matches_label(len(expr.labels) - 1, node_labels[oid]):
        return None
    parents = graph.parent_rows()
    # levels[i] maps a node matching label position i to the child that
    # led to it (position len-1 holds the candidate itself).
    levels: list[dict[int, int | None]] = [{oid: None}]
    for position in range(len(expr.labels) - 2, -1, -1):
        above: dict[int, int | None] = {}
        # Ascending node order + first-write-wins means every parent's
        # back-pointer is the smallest matching node below it.
        for node in sorted(levels[-1]):
            for parent in parents[node]:
                if counter is not None:
                    counter.data_visits += 1
                if parent not in above and \
                        expr.matches_label(position, node_labels[parent]):
                    above[parent] = node
        if not above:
            return None
        levels.append(above)
    start_candidates = levels[-1]
    if expr.rooted:
        # Ascending order + stop at the first root edge keeps the charge
        # deterministic, exactly like validate_candidate's rooted check.
        root = graph.root
        start = None
        for node in sorted(start_candidates):
            if start is not None:
                break
            for parent in parents[node]:
                if counter is not None:
                    counter.data_visits += 1
                if parent == root:
                    start = node
                    break
        if start is None:
            return None
    else:
        start = min(start_candidates)
    path = [start]
    for level in range(len(levels) - 1, 0, -1):
        follow = levels[level][path[-1]]
        path.append(follow)
    return path
