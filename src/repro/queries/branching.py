"""Branching path expressions (XPath predicates), e.g. ``//a[b/c]/d``.

The paper's simple path expressions are label paths; its related work
points at branching queries as the territory of the UD(k,l)-index
("especially efficient for branching path expressions").  This module
adds them end to end:

* :class:`BranchingPathExpression` — a trunk of steps, each optionally
  carrying existential child-path predicates (``a[b/c]`` keeps ``a``
  nodes that have a ``b/c`` path below them);
* :func:`evaluate_branching` — exact evaluation on the data graph;
* :func:`branching_answer` — index-assisted evaluation: the trunk runs
  on any index graph with index-level predicate pruning (safe: an index
  node can only satisfy a predicate if some extent member might), then
  candidates are validated on the data graph.  Indexes with *down*
  similarity (UD(k,l)) can skip the predicate validation; see
  :meth:`repro.indexes.udindex.UDIndex.query_branching`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.counters import CostCounter
from repro.graph.datagraph import DataGraph
from repro.queries.pathexpr import WILDCARD, PathExpression


@dataclass(frozen=True)
class Step:
    """One trunk step: a label plus existential child-path predicates."""

    label: str
    predicates: tuple[PathExpression, ...] = ()

    def __str__(self) -> str:
        return self.label + "".join(f"[{'/'.join(p.labels)}]"
                                    for p in self.predicates)


@dataclass(frozen=True)
class BranchingPathExpression:
    """A branching (twig) query: trunk steps with optional predicates."""

    steps: tuple[Step, ...]
    rooted: bool = False

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a branching expression needs at least one step")

    @classmethod
    def parse(cls, text: str) -> "BranchingPathExpression":
        """Parse ``//a[b/c]/d[e][f/g]`` syntax.

        Predicates are child-relative label paths; nesting inside
        predicates is not supported (matches the twig classes considered
        by the cited related work).
        """
        if text.startswith("//"):
            rooted = False
            body = text[2:]
        elif text.startswith("/"):
            rooted = True
            body = text[1:]
        else:
            rooted = False
            body = text
        if not body:
            raise ValueError(f"empty branching expression {text!r}")
        steps: list[Step] = []
        for part in _split_steps(body):
            label, predicates = _parse_step(part)
            steps.append(Step(label=label, predicates=tuple(predicates)))
        return cls(steps=tuple(steps), rooted=rooted)

    @property
    def trunk(self) -> PathExpression:
        """The expression's label path with predicates stripped."""
        return PathExpression(tuple(step.label for step in self.steps),
                              rooted=self.rooted)

    @property
    def length(self) -> int:
        """Trunk length in edges."""
        return len(self.steps) - 1

    @property
    def has_predicates(self) -> bool:
        return any(step.predicates for step in self.steps)

    @property
    def max_predicate_depth(self) -> int:
        """Longest predicate path in edges-from-the-trunk-node terms
        (a predicate ``b/c`` reaches depth 2 below its trunk node)."""
        depths = [len(predicate.labels)
                  for step in self.steps for predicate in step.predicates]
        return max(depths, default=0)

    def __str__(self) -> str:
        anchor = "/" if self.rooted else "//"
        return anchor + "/".join(str(step) for step in self.steps)


def _split_steps(body: str) -> list[str]:
    """Split on ``/`` outside brackets."""
    steps: list[str] = []
    depth = 0
    current: list[str] = []
    for char in body:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ']' in {body!r}")
        elif char == "/" and depth == 0:
            steps.append("".join(current))
            current = []
            continue
        current.append(char)
    if depth != 0:
        raise ValueError(f"unbalanced '[' in {body!r}")
    steps.append("".join(current))
    if any(not step for step in steps):
        raise ValueError(f"empty step in {body!r}")
    return steps


def _parse_step(part: str) -> tuple[str, list[PathExpression]]:
    if "[" not in part:
        return part, []
    label, remainder = part.split("[", 1)
    if not label:
        raise ValueError(f"step {part!r} has no label")
    predicates: list[PathExpression] = []
    remainder = "[" + remainder
    while remainder:
        if not remainder.startswith("[") or "]" not in remainder:
            raise ValueError(f"malformed predicates in {part!r}")
        inner, remainder = remainder[1:].split("]", 1)
        if "[" in inner:
            raise ValueError("nested predicates are not supported")
        labels = tuple(inner.split("/"))
        if any(not piece for piece in labels):
            raise ValueError(f"empty label in predicate [{inner}]")
        predicates.append(PathExpression(labels, rooted=False))
    return label, predicates


# ----------------------------------------------------------------------
# Exact evaluation on the data graph
# ----------------------------------------------------------------------
def satisfying_nodes(graph: DataGraph, predicate: PathExpression,
                     counter: CostCounter | None = None) -> set[int]:
    """Data nodes having ``predicate.labels`` as an outgoing path.

    Computed bottom-up in one pass per label (each node examined charges
    one data-node visit when a counter is given).
    """
    node_labels = graph.labels
    last = predicate.labels[-1]
    if last == WILDCARD:
        frontier = set(graph.nodes())
    else:
        frontier = set(graph.nodes_with_label(last))
    if counter is not None:
        counter.data_visits += len(frontier)
    parents = graph.parent_rows()
    for position in range(len(predicate.labels) - 2, -1, -1):
        label = predicate.labels[position]
        climbed: set[int] = set()
        for oid in frontier:
            for parent in parents[oid]:
                if counter is not None:
                    counter.data_visits += 1
                if label == WILDCARD or node_labels[parent] == label:
                    climbed.add(parent)
        frontier = climbed
        if not frontier:
            break
    return frontier


def evaluate_branching(graph: DataGraph, expr: BranchingPathExpression,
                       counter: CostCounter | None = None) -> set[int]:
    """Exact target set of a branching expression on the data graph."""
    node_labels = graph.labels
    children = graph.child_rows()

    def step_filter(candidates: set[int], step: Step) -> set[int]:
        for predicate in step.predicates:
            # The predicate is rooted at a *child* path: x[b/c] holds when
            # x has a child b that heads b/c.
            heads = satisfying_nodes(graph, predicate, counter)
            kept: set[int] = set()
            for oid in candidates:
                for child in children[oid]:
                    if counter is not None:
                        counter.data_visits += 1
                    if child in heads:
                        kept.add(oid)
                        break
            candidates = kept
            if not candidates:
                break
        return candidates

    first = expr.steps[0]
    if expr.rooted:
        frontier = {child for child in children[graph.root]
                    if first.label == WILDCARD
                    or node_labels[child] == first.label}
    else:
        if first.label == WILDCARD:
            frontier = set(graph.nodes())
        else:
            frontier = set(graph.nodes_with_label(first.label))
    if counter is not None:
        counter.data_visits += len(frontier)
    frontier = step_filter(frontier, first)
    for step in expr.steps[1:]:
        stepped: set[int] = set()
        for oid in frontier:
            for child in children[oid]:
                if counter is not None:
                    counter.data_visits += 1
                if step.label == WILDCARD or node_labels[child] == step.label:
                    stepped.add(child)
        frontier = step_filter(stepped, step)
        if not frontier:
            break
    return frontier


def validate_branching_candidate(graph: DataGraph,
                                 expr: BranchingPathExpression, oid: int,
                                 counter: CostCounter | None = None) -> bool:
    """Does ``oid`` really answer the branching expression?

    Checks the final step's predicates downwards and the trunk (with the
    other steps' predicates) upwards, charging data-node visits.
    """
    from repro.queries.evaluator import validate_candidate

    node_labels = graph.labels
    last_step = expr.steps[-1]
    if last_step.label != WILDCARD and node_labels[oid] != last_step.label:
        return False
    if not _node_satisfies(graph, oid, last_step, counter):
        return False
    if len(expr.steps) == 1:
        if expr.rooted:
            return validate_candidate(
                graph, PathExpression((last_step.label,), rooted=True), oid,
                counter)
        return True
    parents = graph.parent_rows()
    frontier = {oid}
    for position in range(len(expr.steps) - 2, -1, -1):
        step = expr.steps[position]
        climbed: set[int] = set()
        for node in frontier:
            for parent in parents[node]:
                if counter is not None:
                    counter.data_visits += 1
                if step.label != WILDCARD and \
                        node_labels[parent] != step.label:
                    continue
                if _node_satisfies(graph, parent, step, counter):
                    climbed.add(parent)
        frontier = climbed
        if not frontier:
            return False
    if expr.rooted:
        root = graph.root
        for node in frontier:
            if counter is not None:
                counter.data_visits += len(parents[node])
            if root in parents[node]:
                return True
        return False
    return True


def _node_satisfies(graph: DataGraph, oid: int, step: Step,
                    counter: CostCounter | None) -> bool:
    from repro.queries.pathexpr import PathExpression as PE

    for predicate in step.predicates:
        extended = PE((graph.labels[oid],) + predicate.labels, rooted=False)
        from repro.indexes.udindex import validate_outgoing
        if not validate_outgoing(graph, extended, oid, counter):
            return False
    return True


# ----------------------------------------------------------------------
# Index-assisted evaluation
# ----------------------------------------------------------------------
def index_satisfying_nodes(index_graph, predicate: PathExpression,
                           counter: CostCounter | None = None) -> set[int]:
    """Index nodes that *may* head the predicate path (safe pruning).

    Mirrors :func:`satisfying_nodes` over an
    :class:`~repro.indexes.base.IndexGraph`: if no extent member heads
    the predicate, the index node cannot either (Property 2), so pruning
    by this set never loses answers.
    """
    last = predicate.labels[-1]
    if last == WILDCARD:
        frontier = set(index_graph.nodes)
    else:
        frontier = set(index_graph.nodes_with_label(last))
    if counter is not None:
        counter.index_visits += len(frontier)
    for position in range(len(predicate.labels) - 2, -1, -1):
        label = predicate.labels[position]
        climbed: set[int] = set()
        for nid in frontier:
            for parent in index_graph.parents_of(nid):
                if counter is not None:
                    counter.index_visits += 1
                if label == WILDCARD or \
                        index_graph.nodes[parent].label == label:
                    climbed.add(parent)
        frontier = climbed
        if not frontier:
            break
    return frontier


def branching_answer(index_graph, expr: BranchingPathExpression,
                     counter: CostCounter | None = None,
                     skip_validation: bool = False):
    """Evaluate a branching expression through an index graph.

    The trunk runs over the index with index-level predicate pruning;
    the surviving extents are validated on the data graph (k-bisimilarity
    gives no downward guarantee, so predicate checks always need the
    data graph — unless the caller has down-similarity information and
    passes ``skip_validation=True``, as the UD(k,l)-index does when its
    parameters cover the query).
    """
    from repro.indexes.base import QueryResult

    graph = index_graph.graph
    cost = counter if counter is not None else CostCounter()

    def prune(frontier: set[int], step: Step) -> set[int]:
        for predicate in step.predicates:
            heads = index_satisfying_nodes(index_graph, predicate, cost)
            kept: set[int] = set()
            for nid in frontier:
                for child in index_graph.children_of(nid):
                    cost.index_visits += 1
                    if child in heads:
                        kept.add(nid)
                        break
            frontier = kept
            if not frontier:
                break
        return frontier

    first = expr.steps[0]
    if expr.rooted:
        frontier = {index_graph.node_of[graph.root]}
        cost.index_visits += 1
        steps = expr.steps
    else:
        if first.label == WILDCARD:
            frontier = set(index_graph.nodes)
        else:
            frontier = set(index_graph.nodes_with_label(first.label))
        cost.index_visits += len(frontier)
        frontier = prune(frontier, first)
        steps = expr.steps[1:]
    for step in steps:
        stepped: set[int] = set()
        for nid in frontier:
            for child in index_graph.children_of(nid):
                cost.index_visits += 1
                child_node = index_graph.nodes[child]
                if step.label == WILDCARD or child_node.label == step.label:
                    stepped.add(child)
        frontier = prune(stepped, step)
        if not frontier:
            break

    targets = [index_graph.nodes[nid] for nid in sorted(frontier)]
    answers: set[int] = set()
    validated = False
    for node in targets:
        if skip_validation:
            answers.update(node.extent.members())
            continue
        validated = True
        for oid in node.extent:
            if validate_branching_candidate(graph, expr, oid, cost):
                answers.add(oid)
    return QueryResult(answers=answers, target_nodes=targets, cost=cost,
                       validated=validated)
