"""Path expressions, direct evaluation, and synthetic query workloads."""

from repro.queries.branching import (
    BranchingPathExpression,
    Step,
    evaluate_branching,
    satisfying_nodes,
    validate_branching_candidate,
)
from repro.queries.evaluator import (
    evaluate_on_data_graph,
    required_similarity,
    validate_candidate,
    validate_extent,
)
from repro.queries.pathexpr import PathExpression
from repro.queries.workload import Workload, WorkloadSpec, query_length_histogram

__all__ = [
    "BranchingPathExpression",
    "PathExpression",
    "Step",
    "Workload",
    "WorkloadSpec",
    "evaluate_branching",
    "evaluate_on_data_graph",
    "satisfying_nodes",
    "validate_branching_candidate",
    "query_length_histogram",
    "required_similarity",
    "validate_candidate",
    "validate_extent",
]
