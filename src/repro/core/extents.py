"""Sorted-int-array extents: the compact data plane's answer sets.

The paper's index nodes carry *extents* — sets of data-node oids.  The
original implementation stored them as ``set[int]``: ~32+ bytes per
member, hash-order iteration (canonical digests needed a sort), and a
full rehash to copy.  :class:`Extent` stores the same values as a
strictly-increasing ``array('i')``:

* ~4 bytes per member, one contiguous allocation;
* iteration order *is* canonical order — digests, tokens, and replay
  traces need no ``sorted()`` pass;
* snapshot pinning is a slice-copy (``memcpy``), and because extents
  are immutable the common case is sharing, which is free;
* membership is a ``bisect`` probe; intersection/union/difference run
  at C speed (hash kernels + sort for balanced operands, a bisect
  gallop when one side is much larger) and always return canonical
  sorted arrays.

Interop with the set-based world is deliberate: binary operators accept
plain ``set``/``frozenset`` operands and *return sets* for mixed
operands (so refinement procedures that accumulate mutable working sets
keep working unchanged), while ``Extent``-``Extent`` operations return
``Extent``.  Everything here is order-preserving and deterministic.

Differential reference mode
---------------------------
The pre-compact implementation defined extent algebra by Python set
semantics.  That reference stays available: under
:func:`differential_checks` every merge helper recomputes its result
through sets and raises :class:`ExtentMismatch` on any divergence.  The
verification campaign (``repro verify``) runs with this armed, so every
compact operation executed during an oracle round is differentially
checked against the set-based path.

Numpy backend
-------------
``use_numpy(True)`` (or ``REPRO_EXTENT_NUMPY=1`` in the environment)
switches the storage to ``numpy.int32`` arrays and the merge helpers to
``numpy``'s C set routines (``intersect1d``/``union1d``/``setdiff1d``).
The flag is read when an :class:`Extent` is constructed; mixing backends
is safe (helpers normalise through iteration).  See
``docs/tuning.md#compact-data-plane``.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator
from contextlib import contextmanager

__all__ = [
    "Extent",
    "ExtentMismatch",
    "differential_checks",
    "extent_contains",
    "extent_difference",
    "extent_intersect",
    "extent_union",
    "extent_is_subset",
    "use_numpy",
    "numpy_enabled",
]

_TYPECODE = "i"

#: When True, every merge helper double-checks its output against the
#: set-based reference semantics (the pre-compact implementation).
_DIFFERENTIAL = False

#: Lazily imported numpy module when the backend flag is on, else None.
_NP = None
_USE_NUMPY = False


def _init_numpy_flag() -> None:
    if os.environ.get("REPRO_EXTENT_NUMPY", "") not in ("", "0"):
        use_numpy(True)


def use_numpy(enabled: bool) -> bool:
    """Toggle the numpy storage backend; returns the effective state.

    Enabling is best-effort: when numpy is not importable the flag stays
    off (the ``array`` backend is always available).
    """
    global _NP, _USE_NUMPY
    if not enabled:
        _USE_NUMPY = False
        return False
    if _NP is None:
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy present in CI image
            _USE_NUMPY = False
            return False
        _NP = numpy
    _USE_NUMPY = True
    return True


def numpy_enabled() -> bool:
    """Is the numpy backend currently active?"""
    return _USE_NUMPY


class ExtentMismatch(AssertionError):
    """A compact extent operation diverged from set-reference semantics."""


@contextmanager
def differential_checks(enabled: bool = True):
    """Context manager arming the set-based reference cross-check."""
    global _DIFFERENTIAL
    previous = _DIFFERENTIAL
    _DIFFERENTIAL = enabled
    try:
        yield
    finally:
        _DIFFERENTIAL = previous


def _storage(values: list[int]):
    """Build backing storage for an ascending, deduplicated value list."""
    if _USE_NUMPY:
        return _NP.asarray(values, dtype=_NP.int32)
    return array(_TYPECODE, values)


class Extent:
    """An immutable, strictly-increasing array of data-node oids.

    Construct via :meth:`from_iterable` (sorts + dedups) or
    :meth:`from_sorted` (trusts the caller — used on already-canonical
    merge outputs).  Instances are immutable: there are no mutator
    methods and the backing array is never exposed writable, so sharing
    one across snapshots, caches, and index nodes is safe.
    """

    __slots__ = ("_data", "_members")

    def __init__(self, data) -> None:
        # Internal: ``data`` must already be sorted strictly ascending.
        self._data = data
        # Lazily-built frozenset view (see members()); immutability makes
        # caching it safe.
        self._members = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_iterable(cls, values: Iterable[int]) -> "Extent":
        """Canonicalise arbitrary ints into an extent (sort + dedup)."""
        if isinstance(values, Extent):
            return values
        if isinstance(values, (set, frozenset)):
            # Already deduplicated: sorting alone canonicalises, and
            # skipping the extra set() copy matters on the refinement
            # hot path (every split part passes through here).
            return cls(_storage(sorted(values)))
        return cls(_storage(sorted(set(values))))

    @classmethod
    def from_sorted(cls, values) -> "Extent":
        """Wrap an already strictly-ascending sequence without checking."""
        if _USE_NUMPY:
            return cls(_NP.asarray(values, dtype=_NP.int32))
        if isinstance(values, array) and values.typecode == _TYPECODE:
            return cls(values)
        return cls(array(_TYPECODE, values))

    def copy(self) -> "Extent":
        """Pin a snapshot of this extent.

        Immutability makes sharing safe, so this is O(1); callers that
        need an independent buffer (e.g. spill-to-disk staging) can use
        ``Extent.from_sorted(extent.tolist())``.
        """
        return self

    def tolist(self) -> list[int]:
        """The members as a plain ascending ``list[int]``."""
        if _USE_NUMPY and not isinstance(self._data, array):
            return [int(v) for v in self._data]
        return self._data.tolist()

    def to_set(self) -> set[int]:
        """The members as a plain ``set[int]`` (the reference shape)."""
        cached = self._members
        if cached is not None:
            return set(cached)
        return set(self._data)

    def members(self) -> frozenset:
        """Cached frozenset view, for hash-speed bulk set operations.

        Answer assembly unions many small extents into a working set;
        ``set.update`` from another set runs ~1.7x faster per element
        than from the int array (no per-member boxing).  The view is
        built on first use and shared thereafter — callers must treat it
        as read-only (it is a frozenset precisely so mutation attempts
        fail loudly).  Extents that are never served verbatim pay no
        memory for it.
        """
        cached = self._members
        if cached is None:
            cached = self._members = frozenset(self._data)
        return cached

    # ------------------------------------------------------------------
    # Sequence / container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return len(self._data) > 0

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [int(v) for v in self._data[index]]
        return int(self._data[index])

    def __contains__(self, oid: object) -> bool:
        if not isinstance(oid, int):
            return False
        data = self._data
        position = bisect_left(data, oid)
        return position < len(data) and data[position] == oid

    def __repr__(self) -> str:
        # Bounded on purpose: reprs run inside debug/trace paths and an
        # extent can hold millions of oids.
        shown = self[:6]
        suffix = ", ..." if len(self) > 6 else ""
        body = ", ".join(str(v) for v in shown)
        return f"Extent([{body}{suffix}], n={len(self)})"

    # ------------------------------------------------------------------
    # Equality / ordering (set semantics)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Extent):
            da, db = self._data, other._data
            if len(da) != len(db):
                return False
            if isinstance(da, array) and isinstance(db, array):
                return da == db
            if not isinstance(da, array) and not isinstance(db, array):
                return bool((da == db).all())
            # Mixed backends (one array, one numpy): elementwise walk —
            # numpy's == on an array operand is ambiguous as a truth
            # value.
            return all(int(x) == int(y) for x, y in zip(da, db))
        if isinstance(other, (set, frozenset)):
            return len(other) == len(self._data) and \
                self.members() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # Extents compare by membership, not identity, and are not meant to
    # key dicts (convert to frozenset for that), so hashing is disabled
    # to catch accidental set-of-extents usage early.
    __hash__ = None  # type: ignore[assignment]

    def __le__(self, other) -> bool:
        """Subset test (``extent <= other``)."""
        if isinstance(other, Extent):
            return extent_is_subset(self, other)
        if isinstance(other, (set, frozenset)):
            return self.members() <= other
        return NotImplemented

    def __ge__(self, other) -> bool:
        if isinstance(other, Extent):
            return extent_is_subset(other, self)
        if isinstance(other, (set, frozenset)):
            return self.members() >= other
        return NotImplemented

    def __lt__(self, other) -> bool:
        le = self.__le__(other)
        if le is NotImplemented:
            return le
        return le and len(self) != len(other)

    def __gt__(self, other) -> bool:
        ge = self.__ge__(other)
        if ge is NotImplemented:
            return ge
        return ge and len(self) != len(other)

    def isdisjoint(self, other) -> bool:
        if isinstance(other, Extent):
            return not extent_intersect(self, other)
        return self.members().isdisjoint(other)

    # ------------------------------------------------------------------
    # Set algebra.  Extent op Extent -> Extent (canonical merge);
    # mixed-operand ops return plain sets so callers that accumulate
    # into mutable working sets keep their idioms.
    # ------------------------------------------------------------------
    def __and__(self, other):
        if isinstance(other, Extent):
            return extent_intersect(self, other)
        if isinstance(other, (set, frozenset)):
            # members() is the cached boxed view: set-vs-frozenset
            # intersection runs fully in C, where iterating the int
            # array re-boxes every member per call.
            return other.intersection(self.members())
        return NotImplemented

    __rand__ = __and__

    def __or__(self, other):
        if isinstance(other, Extent):
            return extent_union(self, other)
        if isinstance(other, (set, frozenset)):
            return other.union(self.members())
        return NotImplemented

    __ror__ = __or__

    def __sub__(self, other):
        if isinstance(other, Extent):
            return extent_difference(self, other)
        if isinstance(other, (set, frozenset)):
            return set(self.members()) - other
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, (set, frozenset)):
            return other.difference(self.members())
        return NotImplemented


# ----------------------------------------------------------------------
# Set-algebra kernels (the compact data plane's merge helpers)
# ----------------------------------------------------------------------
def _as_extent(value) -> Extent:
    if isinstance(value, Extent):
        return value
    return Extent.from_iterable(value)


def _differential_guard(op: str, a: Extent, b: Extent,
                        result: Extent) -> None:
    reference = getattr(set(a), op)(set(b))
    if set(result) != reference or list(result) != sorted(reference):
        raise ExtentMismatch(
            f"extent_{op} diverged from set reference: "
            f"got {list(result)[:10]}..., want {sorted(reference)[:10]}...")


def extent_intersect(a, b) -> Extent:
    """``a ∩ b`` as a canonical extent (C hash kernel + sort;
    bisect gallop when one side is much smaller)."""
    a, b = _as_extent(a), _as_extent(b)
    if len(a) > len(b):
        a, b = b, a
    da, db = a._data, b._data
    out: list[int] = []
    if not len(da) or not len(db):
        result = Extent.from_sorted(out)
    elif _USE_NUMPY and not isinstance(da, array) \
            and not isinstance(db, array):
        result = Extent(_NP.intersect1d(da, db, assume_unique=True))
    elif len(db) > 8 * len(da):
        # Gallop: bisect each member of the small side into the large —
        # O(|a| log |b|), beats any whole-operand pass when sizes skew.
        nb = len(db)
        lo = 0
        for value in da:
            lo = bisect_left(db, value, lo)
            if lo >= nb:
                break
            if db[lo] == value:
                out.append(value)
        result = Extent.from_sorted(out)
    else:
        # Balanced sizes: C-level hash intersection + C sort beats an
        # interpreted merge loop at every size CPython reaches; the
        # sorted() is what makes the result canonical again.
        result = Extent.from_sorted(sorted(set(da).intersection(db)))
    if _DIFFERENTIAL:
        _differential_guard("intersection", a, b, result)
    return result


def extent_union(a, b) -> Extent:
    """``a ∪ b`` as a canonical extent (C hash kernel + sort)."""
    a, b = _as_extent(a), _as_extent(b)
    da, db = a._data, b._data
    if not len(da):
        result = b
    elif not len(db):
        result = a
    elif _USE_NUMPY and not isinstance(da, array) \
            and not isinstance(db, array):
        result = Extent(_NP.union1d(da, db))
    else:
        # C-level hash union + C sort; see extent_intersect.
        union = set(da)
        union.update(db)
        result = Extent.from_sorted(sorted(union))
    if _DIFFERENTIAL:
        _differential_guard("union", a, b, result)
    return result


def extent_difference(a, b) -> Extent:
    """``a \\ b`` as a canonical extent (C hash kernel + sort)."""
    a, b = _as_extent(a), _as_extent(b)
    da, db = a._data, b._data
    if not len(da) or not len(db):
        result = a
    elif _USE_NUMPY and not isinstance(da, array) \
            and not isinstance(db, array):
        result = Extent(_NP.setdiff1d(da, db, assume_unique=True))
    else:
        # C-level hash difference + C sort; see extent_intersect.
        result = Extent.from_sorted(sorted(set(da).difference(db)))
    if _DIFFERENTIAL:
        _differential_guard("difference", a, b, result)
    return result


def extent_contains(extent, oid: int) -> bool:
    """Membership probe (bisect; O(log n))."""
    extent = _as_extent(extent)
    result = oid in extent
    if _DIFFERENTIAL and result != (oid in set(extent)):
        raise ExtentMismatch(
            f"extent_contains({oid}) diverged from set reference")
    return result


def extent_is_subset(a, b) -> bool:
    """Is every member of ``a`` in ``b``? (merge walk with galloping)."""
    a, b = _as_extent(a), _as_extent(b)
    da, db = a._data, b._data
    na, nb = len(da), len(db)
    if na > nb:
        result = False
    elif na == 0:
        result = True
    elif nb > 8 * na:
        lo = 0
        result = True
        for value in da:
            lo = bisect_left(db, value, lo)
            if lo >= nb or db[lo] != value:
                result = False
                break
    else:
        i = j = 0
        result = True
        while i < na:
            if j >= nb:
                result = False
                break
            va, vb = da[i], db[j]
            if va == vb:
                i += 1
                j += 1
            elif va > vb:
                j += 1
            else:
                result = False
                break
    if _DIFFERENTIAL and result != set(a).issubset(set(b)):
        raise ExtentMismatch("extent_is_subset diverged from set reference")
    return result


_init_numpy_flag()
