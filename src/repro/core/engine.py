"""The adaptive indexing engine (the paper's Figure 5).

``AdaptiveIndexEngine`` answers a stream of path-expression queries from
a structural index, extracts FUPs from the stream, and refines the index
to support them — the full operating loop the paper's experiments
simulate.  It works with any index in the package: adaptive ones
(M*(k), M(k), D(k)-promote) get refined, static ones (A(k), 1-index)
are simply queried.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.cost.counters import CostCounter
from repro.cost.metrics import IndexSize, index_size
from repro.core.fup import FupExtractor
from repro.graph.datagraph import DataGraph
from repro.indexes.base import QueryResult
from repro.indexes.mstarindex import MStarIndex
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.queries.pathexpr import PathExpression, as_expression


@dataclass
class EngineStats:
    """Running totals over the engine's lifetime.

    Kept as a cheap per-engine view; the numbers are also published to
    the process-wide metrics registry (:data:`repro.obs.metrics.REGISTRY`)
    under ``engine_*`` names with a per-index-family ``index`` label,
    which is the supported way to observe engines in aggregate (several
    engines, replay harnesses, the CLI) — see ``docs/observability.md``.

    Accumulation goes through :meth:`record_query` /
    :meth:`record_refinement`, which hold an internal lock: the serving
    layer (:mod:`repro.serving`) shares one stats object across worker
    threads, and unlocked read-modify-write accumulation silently loses
    updates whenever two workers interleave inside an increment (see
    ``tests/test_engine_stats_threadsafe.py`` for the failure mode).
    The fields themselves stay plain attributes so existing readers
    (`stats.queries`, `stats.cost.total`, reports, benches) keep
    working; use :meth:`snapshot` when a mutually consistent view across
    several fields matters.
    """

    queries: int = 0
    validated_queries: int = 0
    refinements: int = 0
    cache_hits: int = 0
    cost: CostCounter = field(default_factory=CostCounter)
    #: Work spent adapting the index, kept apart from query-serving
    #: ``cost`` — refinement is an investment amortised over future
    #: queries, and folding it into per-query cost would make adaptive
    #: indexes look slower than they serve.
    refine_cost: CostCounter = field(default_factory=CostCounter)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_query(self, cost: CostCounter, validated: bool = False,
                     cache_hit: bool = False) -> None:
        """Account one served query atomically (thread-safe)."""
        with self._lock:
            self.queries += 1
            self.cost.add(cost)
            if validated:
                self.validated_queries += 1
            if cache_hit:
                self.cache_hits += 1

    def record_refinement(self, cost: CostCounter | None = None) -> None:
        """Account one index refinement atomically (thread-safe)."""
        with self._lock:
            self.refinements += 1
            if cost is not None:
                self.refine_cost.add(cost)

    def merge(self, other: "EngineStats") -> None:
        """Fold another stats object into this one (per-worker pattern).

        The alternative to sharing: give each worker its own stats and
        merge on the way out.  Both sides are locked, ``other`` first —
        callers must not merge two stats objects into each other
        concurrently from both directions.
        """
        with other._lock:
            increment = (other.queries, other.validated_queries,
                         other.refinements, other.cache_hits,
                         other.cost.copy(), other.refine_cost.copy())
        with self._lock:
            self.queries += increment[0]
            self.validated_queries += increment[1]
            self.refinements += increment[2]
            self.cache_hits += increment[3]
            self.cost.add(increment[4])
            self.refine_cost.add(increment[5])

    def snapshot(self) -> "EngineStats":
        """A mutually consistent copy of every field (thread-safe)."""
        with self._lock:
            return EngineStats(
                queries=self.queries,
                validated_queries=self.validated_queries,
                refinements=self.refinements,
                cache_hits=self.cache_hits,
                cost=self.cost.copy(),
                refine_cost=self.refine_cost.copy())

    @property
    def average_cost(self) -> float:
        """Average two-part *query* cost per query served (excludes
        refinement work; see :attr:`total_cost`)."""
        return self.cost.total / self.queries if self.queries else 0.0

    @property
    def total_cost(self) -> int:
        """Everything the engine paid: query serving plus refinement."""
        return self.cost.total + self.refine_cost.total

    @property
    def average_total_cost(self) -> float:
        """Average all-in cost per query, refinement included."""
        return self.total_cost / self.queries if self.queries else 0.0


class AdaptiveIndexEngine:
    """Query processor + FUP processor + refine processor in one object.

    Example::

        engine = AdaptiveIndexEngine(graph)        # M*(k) by default
        for text in ("//person/name", "//person/name", "//item"):
            answers = engine.execute(text).answers
        engine.stats.refinements   # how often the index adapted
    """

    def __init__(self, graph: DataGraph,
                 index_factory: Callable[[DataGraph], object] = MStarIndex,
                 extractor: FupExtractor | None = None,
                 cache: bool = True, cache_size: int = 256) -> None:
        """``index_factory`` builds the index (default: M*(k));
        ``extractor`` decides which queries become FUPs (default: every
        repeatable query immediately, like the paper's experiments).

        ``cache`` enables the refinement-aware result cache: a repeated
        query whose index fingerprint has not changed since its last run
        is served from the stored result at O(answer) cost.  Indexes
        without a ``cache_fingerprint`` method are never cached.
        """
        self.graph = graph
        self.index = index_factory(graph)
        self.extractor = extractor if extractor is not None else FupExtractor()
        self.stats = EngineStats()
        self._refined: set[PathExpression] = set()
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.cache_enabled = cache
        self._cache_size = cache_size
        self._cache: dict[PathExpression, tuple[tuple, QueryResult]] = {}
        self._fingerprint = getattr(self.index, "cache_fingerprint", None)
        self._refine_accepts_counter = self._probe_refine_counter()
        # Per-index-family metric children, bound once (labels() memoises
        # but the hot path should not even pay the dict lookup).
        family = type(self.index).__name__
        self._family = family
        registry = _metrics.REGISTRY
        self._m_queries = registry.counter(
            "engine_queries_total", "queries served by the engine",
            ("index",)).labels(index=family)
        self._m_validated = registry.counter(
            "engine_validated_queries_total",
            "queries whose answer needed data-graph validation",
            ("index",)).labels(index=family)
        self._m_cache_hits = registry.counter(
            "engine_cache_hits_total", "result-cache hits", ("index",)
        ).labels(index=family)
        self._m_cache_misses = registry.counter(
            "engine_cache_misses_total",
            "cacheable queries that had to run", ("index",)
        ).labels(index=family)
        self._m_refinements = registry.counter(
            "engine_refinements_total", "index refinements triggered",
            ("index",)).labels(index=family)
        cost_histogram = registry.histogram(
            "engine_query_cost_visits",
            "two-part query cost in visits", ("index", "component"))
        self._m_index_visits = cost_histogram.labels(index=family,
                                                     component="index")
        self._m_data_visits = cost_histogram.labels(index=family,
                                                    component="data")
        self._m_refine_cost = registry.histogram(
            "engine_refine_cost_visits",
            "refinement work in visits (index + data)", ("index",)
        ).labels(index=family)

    def _probe_refine_counter(self) -> bool:
        """Does the index's ``refine`` take a cost counter?  (Third-party
        indexes may predate refinement accounting.)"""
        refine = getattr(self.index, "refine", None)
        if refine is None:
            return False
        try:
            import inspect

            return "counter" in inspect.signature(refine).parameters
        except (TypeError, ValueError):
            return False

    @property
    def can_refine(self) -> bool:
        """Does the underlying index support incremental refinement?"""
        return hasattr(self.index, "refine")

    def execute(self, query: "PathExpression | str") -> QueryResult:
        """Answer one query; adapt the index if the query is a FUP.

        Accepts a :class:`PathExpression` or XPath-style text.  The
        result is always the exact, validated-where-needed answer; when
        the query turns out frequent the index is refined afterwards so
        future runs avoid the validation cost.
        """
        expr = as_expression(query)
        tracer = _trace.TRACER
        traced = tracer.enabled
        outer = tracer.span("engine.execute", query=str(expr),
                            index=self._family) if traced else _trace.NULL_SPAN
        with outer:
            token: tuple | None = None
            result: QueryResult | None = None
            cache_hit = False
            if self.cache_enabled and self._fingerprint is not None:
                probe = tracer.span("engine.cache_probe") if traced \
                    else _trace.NULL_SPAN
                with probe:
                    token = self._fingerprint(expr)
                    entry = self._cache.get(expr)
                    if entry is not None and entry[0] == token:
                        # The fingerprint pins everything the stored result
                        # can depend on, so serving the copy is
                        # indistinguishable (answers and validated flag)
                        # from re-running the query.
                        source = entry[1]
                        result = QueryResult(
                            answers=set(source.answers),
                            target_nodes=list(source.target_nodes),
                            cost=CostCounter(index_visits=1),
                            validated=source.validated)
                        cache_hit = True
                        self._m_cache_hits.inc()
                        probe.tag(outcome="hit")
                    else:
                        self._m_cache_misses.inc()
                        probe.tag(outcome="stale" if entry is not None
                                  else "miss")
            if result is None:
                run = tracer.span("engine.query") if traced \
                    else _trace.NULL_SPAN
                with run:
                    result = self.index.query(expr)
                if token is not None:
                    store = tracer.span("engine.cache_store") if traced \
                        else _trace.NULL_SPAN
                    with store:
                        self._cache_store(expr, token, result)
            self.stats.record_query(result.cost, validated=result.validated,
                                    cache_hit=cache_hit)
            self._m_queries.inc()
            self._m_index_visits.observe(result.cost.index_visits)
            self._m_data_visits.observe(result.cost.data_visits)
            if result.validated:
                self._m_validated.inc()

            is_fup = self.extractor.observe(expr)
            # needs_refresh: refining *other* FUPs can split this one's
            # target nodes and reintroduce validation.  A query the engine
            # already committed refinement work to stays supported
            # regardless of whether the extractor still flags it frequent
            # — otherwise a FUP whose count slid out of the extractor's
            # window would pay validation forever.
            needs_refresh = expr in self._refined and result.validated
            if self.can_refine and ((is_fup and expr not in self._refined)
                                    or needs_refresh):
                gate = tracer.span(
                    "engine.refine", query=str(expr),
                    reason="refresh" if needs_refresh else "fup"
                ) if traced else _trace.NULL_SPAN
                with gate:
                    if self._refine_accepts_counter:
                        refine_cost = CostCounter()
                        self.index.refine(expr, result, counter=refine_cost)
                        self.stats.record_refinement(refine_cost)
                        self._m_refine_cost.observe(refine_cost.total)
                    else:
                        self.index.refine(expr, result)
                        self.stats.record_refinement()
                self._refined.add(expr)
                self._m_refinements.inc()
        return result

    def _cache_store(self, expr: PathExpression, token: tuple,
                     result: QueryResult) -> None:
        if expr not in self._cache and len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))  # FIFO eviction
        # Snapshot answers/targets: callers may mutate the returned sets.
        self._cache[expr] = (token, QueryResult(
            answers=set(result.answers),
            target_nodes=list(result.target_nodes),
            cost=result.cost.copy(), validated=result.validated))

    def execute_all(self, queries) -> list[QueryResult]:
        """Convenience: run a whole workload, returning every result."""
        return [self.execute(query) for query in queries]

    def size(self) -> IndexSize:
        """Current index size in the paper's (nodes, edges) metrics."""
        return index_size(self.index)

    def supported_fups(self) -> set[PathExpression]:
        """Expressions the engine has refined the index for so far."""
        return set(self._refined)

    def __repr__(self) -> str:
        return (f"AdaptiveIndexEngine(index={type(self.index).__name__}, "
                f"queries={self.stats.queries}, "
                f"refinements={self.stats.refinements})")
