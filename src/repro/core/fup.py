"""Frequently-used path expression (FUP) extraction.

The paper's operating loop (Figure 5) "extracts FUPs from queries" and
feeds them to the refinement algorithm; in the experiments every
workload query is treated as a FUP.  :class:`FupExtractor` generalises
that: a query becomes a FUP once it has been seen ``threshold`` times,
optionally counting only the last ``window`` queries so that the index
"adapts to changing query workloads" — stale expressions lose their
frequent status as the window slides past them.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.queries.pathexpr import PathExpression


class FupExtractor:
    """Frequency-threshold FUP detection over a (possibly sliding) stream."""

    def __init__(self, threshold: int = 1, window: int | None = None) -> None:
        """``threshold``: occurrences needed before a query is a FUP.
        ``window``: only the most recent ``window`` queries count
        (``None`` = the whole history)."""
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None)")
        self.threshold = threshold
        self.window = window
        self._counts: Counter[PathExpression] = Counter()
        self._history: deque[PathExpression] = deque()

    def observe(self, expr: PathExpression) -> bool:
        """Record one occurrence; return True if ``expr`` is now frequent.

        Wildcard and descendant-axis expressions are tracked but never
        reported as FUPs — the refinement algorithms support simple
        child-axis label paths only.
        """
        self._counts[expr] += 1
        if self.window is not None:
            self._history.append(expr)
            if len(self._history) > self.window:
                expired = self._history.popleft()
                self._counts[expired] -= 1
                if self._counts[expired] <= 0:
                    del self._counts[expired]
        if expr.has_wildcard or expr.has_descendant_steps:
            return False
        return self._counts[expr] >= self.threshold

    def count(self, expr: PathExpression) -> int:
        """Occurrences of ``expr`` currently in scope."""
        return self._counts.get(expr, 0)

    def frequent(self) -> list[PathExpression]:
        """All currently-frequent (non-wildcard) expressions, most first."""
        return [expr for expr, count in self._counts.most_common()
                if count >= self.threshold and not expr.has_wildcard
                and not expr.has_descendant_steps]

    def __repr__(self) -> str:
        return (f"FupExtractor(threshold={self.threshold}, "
                f"window={self.window}, tracked={len(self._counts)})")
