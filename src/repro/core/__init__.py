"""The adaptive indexing engine — the paper's Figure 5 operating loop.

Figure 5 sketches how an M(k)/M*(k)-index is operated: a *query
processor* answers incoming queries from the index graph (validating
against the data graph when the answer is not guaranteed precise), a
*FUP processor* extracts frequently-used path expressions from the query
stream, and a *refine processor* refines the index to support them.
:class:`~repro.core.engine.AdaptiveIndexEngine` wires those pieces
together around any of the package's indexes.
"""

from repro.core.engine import AdaptiveIndexEngine, EngineStats
from repro.core.fup import FupExtractor

__all__ = ["AdaptiveIndexEngine", "EngineStats", "FupExtractor"]
