"""Branching (twig) queries across index families.

Runs selection-style twig queries (``//open_auction/bidder[personref]``)
and structural-join twigs over an auction document, comparing direct
evaluation against A(k)-, M*(k)- and UD(k,l)-assisted evaluation — the
query class the UD(k,l)-index (related work of the paper) specialises
in.

Run:  python examples/twig_queries.py [scale]
"""

import sys

from repro import AkIndex, BranchingPathExpression, MStarIndex, UDIndex, generate_xmark
from repro.cost.counters import CostCounter
from repro.queries.branching import branching_answer, evaluate_branching

QUERIES = [
    "//open_auction[bidder]",
    "//open_auction/bidder[personref]",
    "//person[watches/watch]",
    "//item[mailbox/mail]/name",
    "//closed_auction[annotation]",
    "//category[description]",
]


def main(scale: float = 0.02) -> None:
    graph = generate_xmark(scale=scale)
    print(f"document: {graph}\n")

    ak = AkIndex(graph, 3)
    ud = UDIndex(graph, 3, 2)
    mstar = MStarIndex(graph)
    for text in QUERIES:
        trunk = BranchingPathExpression.parse(text).trunk
        mstar.refine(trunk, mstar.query(trunk))

    print(f"{'query':<36} {'answers':>8} {'direct':>7} {'A(3)':>7} "
          f"{'M*(k)':>7} {'UD(3,2)':>8}")
    for text in QUERIES:
        expr = BranchingPathExpression.parse(text)
        counter = CostCounter()
        truth = evaluate_branching(graph, expr, counter)
        direct_cost = counter.total

        ak_result = branching_answer(ak.index, expr)
        mstar_result = mstar.query_branching(expr)
        ud_result = ud.query_branching(expr)
        for name, result in (("A(3)", ak_result), ("M*(k)", mstar_result),
                             ("UD", ud_result)):
            assert result.answers == truth, f"{name} wrong on {text}"

        print(f"{text:<36} {len(truth):>8} {direct_cost:>7} "
              f"{ak_result.cost.total:>7} {mstar_result.cost.total:>7} "
              f"{ud_result.cost.total:>8}"
              + ("   (no validation)" if not ud_result.validated else ""))

    print("\nUD(k,l) answers final-step twigs straight from the index; "
          "the other indexes validate candidates on the data graph.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
