"""Live document updates with incremental index maintenance.

The paper's documents are static; a deployed index also sees the
document grow.  This example runs an auction site "live": new persons
register, new auctions open, bids arrive as reference edges — all while
an adaptive M*(k)-index keeps serving exact answers.  Subtree inserts
are free (fresh nodes enter as k=0 singletons); reference additions
demote the claims they invalidate, and the normal refinement loop wins
the precision back.

Run:  python examples/live_updates.py [scale]
"""

import sys

from repro import MStarIndex, PathExpression, generate_xmark
from repro.indexes.maintenance import add_reference, insert_xml_fragment
from repro.queries.evaluator import evaluate_on_data_graph

NEW_PERSON = "<person><name/><emailaddress/><watches><watch/></watches></person>"
NEW_AUCTION = ("<open_auction><initial/><current/><quantity/><type/>"
               "<interval><start/><end/></interval></open_auction>")


def check(graph, index, expr):
    result = index.query(expr)
    truth = evaluate_on_data_graph(graph, expr)
    status = "precise" if not result.validated else "validated"
    assert result.answers == truth, f"wrong answer for {expr}"
    return len(result.answers), status, result.cost.total


def main(scale: float = 0.02) -> None:
    graph = generate_xmark(scale=scale)
    index = MStarIndex(graph)
    monitored = [PathExpression.parse(text) for text in
                 ("//people/person", "//open_auctions/open_auction",
                  "//open_auction/bidder/personref/person")]
    for expr in monitored:
        index.refine(expr, index.query(expr))
    print(f"document: {graph}")
    print(f"index:    {index}\n")

    people = graph.nodes_with_label("people")[0]
    auctions = graph.nodes_with_label("open_auctions")[0]

    for round_number in range(1, 6):
        new_person = insert_xml_fragment(graph, people, NEW_PERSON,
                                         indexes=[index])[0]
        new_auction = insert_xml_fragment(graph, auctions, NEW_AUCTION,
                                          indexes=[index])[0]
        # The new person bids on the new auction: bidder subtree + IDREF.
        bidder = insert_xml_fragment(graph, new_auction,
                                     "<bidder><date/><increase/>"
                                     "<personref/></bidder>",
                                     indexes=[index])
        personref = bidder[-1]
        add_reference(graph, personref, new_person, indexes=[index])

        print(f"round {round_number}: document now {graph.num_nodes} nodes")
        for expr in monitored:
            count, status, cost = check(graph, index, expr)
            print(f"  {str(expr):<44} {count:>4} answers  "
                  f"({status}, cost {cost})")
        # Re-refining the bid query recovers precision lost to demotion.
        index.refine(monitored[2], index.query(monitored[2]))
    index.check_invariants()
    print("\nall answers stayed exact through every update "
          "(insertions free, references demote + re-refine)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
