"""Anatomy of the indexes, on the paper's own running examples.

Walks through Figures 2, 3, 4, and 7 of the paper, printing the
partitions each index produces so the over-refinement arguments can be
seen directly:

* Figure 2 — equal label paths without bisimilarity (A(k) family).
* Figure 3 — D(k)-promote shattering irrelevant data nodes; M(k) not.
* Figure 4 — overqualified parents splitting 1-bisimilar nodes; M*(k) not.
* Figure 7 — the component hierarchy of an M*(k)-index.

Run:  python examples/index_anatomy.py
"""

from repro import AkIndex, DkIndex, MkIndex, MStarIndex, PathExpression
from repro.graph.examples import (
    figure2_same_paths_not_bisimilar,
    figure3_refinement_comparison,
    figure4_overqualified_parents,
    figure7_mstar_example,
)


def show(title: str, index_graph) -> None:
    print(f"  {title}:")
    for node in sorted(index_graph.nodes.values(),
                       key=lambda n: (n.label, min(n.extent))):
        print(f"    {node.label:<6} extent={sorted(node.extent)}  k={node.k}")


def main() -> None:
    print("=== Figure 2: same label paths, not bisimilar ===")
    graph = figure2_same_paths_not_bisimilar()
    for k in (1, 2):
        index = AkIndex(graph, k)
        d_nodes = [sorted(n.extent) for n in index.index.nodes.values()
                   if n.label == "d"]
        print(f"  A({k}) groups the d nodes as {d_nodes}")
    print()

    print("=== Figure 3: refinement for FUP r/a/b ===")
    graph = figure3_refinement_comparison()
    fup = PathExpression.descendant("r", "a", "b")

    mk = MkIndex(graph)
    mk.refine(fup, mk.query(fup))
    show("M(k) after REFINE (irrelevant b's stay merged)", mk.index)

    dk = DkIndex(graph)
    dk.refine(fup)
    show("D(k) after PROMOTE (irrelevant b's shattered)", dk.index)
    print()

    print("=== Figure 4: overqualified parents ===")
    graph, overrefined = figure4_overqualified_parents()
    fup = PathExpression.descendant("b", "c")

    dk = DkIndex.from_partition(graph, overrefined)
    dk.refine(fup)
    show("D(k)-promote splits the 1-bisimilar c nodes", dk.index)

    mstar = MStarIndex(graph)
    mstar.refine(fup, mstar.query(fup))
    show("M*(k) keeps them together (finest component)",
         mstar.components[-1])
    print()

    print("=== Figure 7: M*(k) component hierarchy for //b/a/c ===")
    graph = figure7_mstar_example()
    fup = PathExpression.descendant("b", "a", "c")
    mstar = MStarIndex(graph)
    mstar.refine(fup, mstar.query(fup))
    for i, component in enumerate(mstar.components):
        show(f"I{i}", component)
    result = mstar.query(fup)
    print(f"  //b/a/c -> {sorted(result.answers)} "
          f"(cost {result.cost.total}, validated={result.validated})")


if __name__ == "__main__":
    main()
