"""Disk-resident M*(k)-index (the paper's Section 6 future work, built).

Refines an M*(k)-index for an auction-site workload, serialises it into
a paged file, and queries it through an LRU buffer pool — demonstrating
the "loaded into memory selectively and incrementally" behaviour: short
queries touch only the coarse components' few pages, and a small hot set
serves most of the workload.

Run:  python examples/disk_resident.py [scale]
"""

import os
import sys
import tempfile

from repro import MStarIndex, Workload, generate_xmark
from repro.storage import DiskMStarIndex


def main(scale: float = 0.02) -> None:
    graph = generate_xmark(scale=scale)
    workload = Workload.generate(graph, num_queries=200, max_length=9, seed=9)
    print(f"document: {graph}")

    index = MStarIndex(graph)
    for expr in workload:
        index.refine(expr, index.query(expr))
    print(f"refined in-memory index: {index}\n")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "auction.rpdi")
        disk = DiskMStarIndex.build(index, path, page_size=2048,
                                    buffer_pages=32)
        print(f"on disk: {disk}, "
              f"{os.path.getsize(path) / 1024:.1f} KiB\n")

        print("replaying the workload through a 32-page buffer pool:")
        mismatches = 0
        for expr in workload:
            if disk.query(expr).answers != index.query(expr).answers:
                mismatches += 1
        reads, hits = disk.io_stats()
        print(f"  {len(workload)} queries, {mismatches} mismatches, "
              f"{reads} physical page reads, {hits} pool hits "
              f"({hits / (reads + hits):.0%} hit rate)\n")

        print("selective loading: pages read per query length "
              "(cold pool each time):")
        for max_len in (0, 2, 5, 9):
            sample = [expr for expr in workload if expr.length <= max_len][:40]
            with DiskMStarIndex(path, graph, buffer_pages=100_000) as cold:
                for expr in sample:
                    cold.query(expr)
                cold_reads, _ = cold.io_stats()
            print(f"  queries of length <= {max_len}: {cold_reads:>4} "
                  f"pages touched (of {disk.page_count})")
        disk.close()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
