"""Index shoot-out on an astronomy catalog (the paper's NASA scenario).

Builds every index family the paper evaluates — 1-index, A(k) for several
k, D(k)-construct, D(k)-promote, M(k), M*(k) — over a NASA-like document
(deep, irregular, reference-heavy, with ``name`` reused in seven
contexts) and prints a compact version of the paper's Figure 12: average
query cost against index size for a 9-length workload.

Run:  python examples/astronomy_catalog.py [scale]
"""

import sys

from repro import (
    AkIndex,
    DkIndex,
    MkIndex,
    MStarIndex,
    OneIndex,
    Workload,
    generate_nasa,
)
from repro.experiments.cost_vs_size import average_workload_cost


def main(scale: float = 0.02) -> None:
    graph = generate_nasa(scale=scale)
    print(f"astronomy catalog document: {graph}\n")

    workload = Workload.generate(graph, num_queries=300, max_length=9, seed=5)

    rows = []
    for k in (0, 2, 4, 6):
        rows.append((f"A({k})", AkIndex(graph, k)))
    rows.append(("1-index", OneIndex(graph)))
    rows.append(("D-construct", DkIndex.construct(graph, list(workload))))

    promoted = DkIndex(graph)
    for expr in workload:
        promoted.refine(expr)
    rows.append(("D-promote", promoted))

    mk = MkIndex(graph)
    for expr in workload:
        mk.refine(expr, mk.query(expr))
    rows.append(("M(k)", mk))

    mstar = MStarIndex(graph)
    for expr in workload:
        mstar.refine(expr, mstar.query(expr))
    rows.append(("M*(k)", mstar))

    print(f"{'index':<12} {'nodes':>7} {'edges':>7} {'avg cost':>9} "
          f"{'index visits':>13} {'data visits':>12}")
    for name, index in rows:
        avg, index_visits, data_visits = average_workload_cost(
            index.query, workload)
        print(f"{name:<12} {index.size_nodes():>7} {index.size_edges():>7} "
              f"{avg:>9.1f} {index_visits:>13.1f} {data_visits:>12.1f}")

    print("\n(the M*(k) row should show the lowest cost at the smallest "
          "adaptive-index node count — the paper's headline result)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
