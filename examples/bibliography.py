"""A bibliography service on a citation graph (DBLP-like dataset).

Drives the Figure-5 engine over a reference-heavy, shallow document —
the opposite structural regime from the auction and astronomy examples.
Shows the three query species side by side: simple paths (adaptive
refinement), paths through citation reference edges, and twig queries,
plus witness-path explanation for one answer.

Run:  python examples/bibliography.py [scale]
"""

import sys

from repro import (
    AdaptiveIndexEngine,
    BranchingPathExpression,
    FupExtractor,
    MStarIndex,
    PathExpression,
    generate_dblp,
)
from repro.queries.branching import evaluate_branching
from repro.queries.evaluator import find_instance

HOT_QUERIES = [
    "//article/author/name",          # who wrote journal articles
    "//inproceedings/crossref/proceedings",  # volume lookup via crossref
    "//article/cite/inproceedings",   # citations into conferences
    "//proceedings/editor/name",
]


def main(scale: float = 0.02) -> None:
    graph = generate_dblp(scale=scale)
    print(f"bibliography: {graph}\n")

    # Refine only queries seen twice (a realistic FUP threshold).
    engine = AdaptiveIndexEngine(graph, extractor=FupExtractor(threshold=2))
    print(f"{'query':<42} {'pass 1':>7} {'pass 2':>7} {'pass 3':>7}")
    for text in HOT_QUERIES:
        costs = [engine.execute(text).cost.total for _ in range(3)]
        print(f"{text:<42} {costs[0]:>7} {costs[1]:>7} {costs[2]:>7}")
    print(f"\nengine: {engine.stats.queries} queries served, "
          f"{engine.stats.refinements} refinements, "
          f"avg cost {engine.stats.average_cost:.1f}\n")

    # Twig: articles citing a conference paper that has a crossref.
    twig = BranchingPathExpression.parse(
        "//article[cite/inproceedings/crossref]")
    assert isinstance(engine.index, MStarIndex)
    result = engine.index.query_branching(twig)
    truth = evaluate_branching(graph, twig)
    assert result.answers == truth
    print(f"twig {twig}: {len(result.answers)} articles "
          f"(cost {result.cost.total})")

    # Explain one answer with a witness path.
    expr = PathExpression.parse("//article/cite/inproceedings")
    citing = engine.execute(expr)
    if citing.answers:
        target = min(citing.answers)
        witness = find_instance(graph, expr, target)
        labeled = " -> ".join(f"{oid}:{graph.label(oid)}" for oid in witness)
        print(f"witness for oid {target}: {labeled}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
