"""Adaptive indexing of an auction site (the paper's XMark scenario).

Simulates the paper's operating loop on an XMark-like document: queries
arrive in batches, each batch is answered (with validation while the
index is still coarse) and then fed to the refinement algorithm as FUPs.
The script reports how the average query cost falls and the index grows
batch by batch, then compares the three M*(k) query strategies on the
final index.

Run:  python examples/auction_site.py [scale]
"""

import sys

from repro import MStarIndex, Workload, generate_xmark
from repro.experiments.cost_vs_size import average_workload_cost


def main(scale: float = 0.02) -> None:
    graph = generate_xmark(scale=scale)
    print(f"auction site document: {graph}\n")

    workload = Workload.generate(graph, num_queries=200, max_length=9, seed=3)
    index = MStarIndex(graph)

    print(f"{'batch':>6} {'avg cost (live)':>16} {'nodes':>7} {'edges':>7} "
          f"{'components':>11}")
    for batch_number, batch in enumerate(workload.batches(40), start=1):
        live_cost = 0
        for expr in batch:
            result = index.query(expr)     # pays validation while coarse
            live_cost += result.cost.total
            index.refine(expr, result)     # adapt to the FUP
        print(f"{batch_number:>6} {live_cost / len(batch):>16.1f} "
              f"{index.size_nodes():>7} {index.size_edges():>7} "
              f"{len(index.components):>11}")

    print("\nstrategies on the refined index (rerunning all 200 queries):")
    for strategy in ("naive", "topdown", "prefilter"):
        avg, index_visits, data_visits = average_workload_cost(
            lambda expr: index.query(expr, strategy=strategy), workload)
        print(f"  {strategy:<10} avg cost {avg:7.1f} "
              f"({index_visits:.1f} index + {data_visits:.1f} data visits)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
