"""Quickstart: index an XML document and answer path expressions.

Parses a small order-management document (with ID/IDREF references),
builds an M*(k)-index, runs a few path-expression queries — showing the
validation step for queries the index is not yet refined for — then
refines the index for a frequent query and shows the cost drop.

Run:  python examples/quickstart.py
"""

from repro import MStarIndex, PathExpression, parse_xml

DOCUMENT = """
<store>
  <customers>
    <customer id="c1"><name><first/><last/></name><address><city/></address></customer>
    <customer id="c2"><name><last/></name></customer>
    <customer id="c3"><name><first/><last/></name><address><city/><zip/></address></customer>
  </customers>
  <orders>
    <order><buyer ref="c1"/><lines><line><sku/><qty/></line></lines></order>
    <order><buyer ref="c2"/><lines><line><sku/><qty/></line><line><sku/><qty/></line></lines></order>
    <order><buyer ref="c3"/><lines><line><sku/><qty/></line></lines></order>
  </orders>
  <suppliers>
    <supplier><name><last/></name><catalog><sku/><sku/></catalog></supplier>
  </suppliers>
</store>
"""


def main() -> None:
    graph = parse_xml(DOCUMENT)
    print(f"parsed document: {graph}")

    index = MStarIndex(graph)
    print(f"initial index: {index}\n")

    # 'last' names exist under customers AND suppliers: the coarse index
    # cannot tell them apart, so a structural query needs validation.
    query = PathExpression.parse("//customer/name/last")
    result = index.query(query)
    print(f"{query}  ->  oids {sorted(result.answers)}")
    print(f"  cost: {result.cost.index_visits} index visits + "
          f"{result.cost.data_visits} data visits "
          f"(validated={result.validated})")

    # Treat it as a frequent query: refine the index to support it.
    index.refine(query, result)
    print(f"\nafter refine: {index}")

    rerun = index.query(query)
    print(f"{query}  ->  oids {sorted(rerun.answers)}")
    print(f"  cost: {rerun.cost.index_visits} index visits + "
          f"{rerun.cost.data_visits} data visits "
          f"(validated={rerun.validated})")

    # Short queries still run on the coarse component: cheap either way.
    short = PathExpression.parse("//name")
    print(f"\n{short}  ->  {len(index.query(short).answers)} nodes, "
          f"cost {index.query(short).cost.total}")

    assert rerun.answers == result.answers
    assert not rerun.validated


if __name__ == "__main__":
    main()
